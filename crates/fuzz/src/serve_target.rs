//! Protocol fuzzing for the `sufsat-serve` framed-message parser.
//!
//! Each case spins a malformed byte sequence out of the seeded PRNG —
//! truncated frames, oversized length prefixes, invalid UTF-8, garbage
//! JSON, wrong field types — and throws it at a live in-process server.
//! The server must answer `error` or hang up; it must never panic, and
//! it must never leak a worker or a session. Liveness is enforced by a
//! well-formed probe request after every few malformed cases, and leak
//! freedom by the final `stats` + drain: the panic counter must read
//! zero and the drained report must show zero inflight jobs and zero
//! open sessions.
//!
//! A failing case is written to the corpus directory as a `.hex`
//! reproducer (hex-encoded bytes, one line, `#` comments) that
//! `sufsat-fuzz --target serve --replay-hex FILE` re-sends verbatim.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

use sufsat_prng::Prng;
use sufsat_serve::{reply_status, Client, ServeOptions, Server};

/// Configuration for a serve-protocol campaign.
#[derive(Debug, Clone)]
pub struct ServeFuzzConfig {
    /// Campaign seed; `(seed, case)` reproduces the exact bytes.
    pub seed: u64,
    /// Number of malformed cases to run.
    pub cases: usize,
    /// Where failing cases are written as `.hex` reproducers
    /// (`None` disables).
    pub corpus_dir: Option<PathBuf>,
    /// Progress line every N cases (0 = quiet).
    pub log_every: usize,
}

impl Default for ServeFuzzConfig {
    fn default() -> ServeFuzzConfig {
        ServeFuzzConfig {
            seed: 0,
            cases: 200,
            corpus_dir: Some(PathBuf::from("fuzz-corpus")),
            log_every: 50,
        }
    }
}

/// Outcome of a serve-protocol campaign.
#[derive(Debug, Default)]
pub struct ServeFuzzSummary {
    /// Malformed cases sent.
    pub cases_run: usize,
    /// Cases answered with an `error` reply.
    pub error_replies: usize,
    /// Cases where the server hung up (legal for framing-level damage).
    pub closed: usize,
    /// Liveness probes that came back `ok`.
    pub probes_ok: usize,
    /// Failures (probe dead, server panicked, leak at shutdown).
    pub failures: Vec<ServeFuzzFailure>,
}

impl ServeFuzzSummary {
    /// True when the campaign finished without failures.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// One campaign failure, with enough to reproduce it.
#[derive(Debug)]
pub struct ServeFuzzFailure {
    /// Case index within the campaign (`usize::MAX` for end-of-campaign
    /// leak checks).
    pub case_index: usize,
    /// What went wrong.
    pub detail: String,
    /// The malformed bytes (empty for end-of-campaign checks).
    pub bytes: Vec<u8>,
    /// Reproducer path, when a corpus directory was configured.
    pub path: Option<PathBuf>,
}

/// The malformed byte sequence for `(seed, case)`. Strategy rotates with
/// the case index so every campaign covers the whole taxonomy.
pub fn malformed_bytes(seed: u64, case: usize) -> Vec<u8> {
    let mut rng = Prng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let frame = |payload: &[u8]| -> Vec<u8> {
        let mut out = (payload.len() as u32).to_be_bytes().to_vec();
        out.extend_from_slice(payload);
        out
    };
    match case % 12 {
        // Raw garbage: the length prefix itself is random junk.
        0 => {
            let n = 1 + (rng.next_u64() % 64) as usize;
            (0..n).map(|_| rng.next_u64() as u8).collect()
        }
        // Truncated frame: honest prefix, missing payload tail.
        1 => {
            let declared = 8 + (rng.next_u64() % 56) as u32;
            let supplied = (rng.next_u64() % declared as u64) as usize;
            let mut out = declared.to_be_bytes().to_vec();
            out.extend((0..supplied).map(|_| b'{'));
            out
        }
        // Oversized length prefix (way past max_frame).
        2 => {
            let declared = (1u32 << 24) + (rng.next_u64() as u32 & 0x00ff_ffff);
            declared.to_be_bytes().to_vec()
        }
        // Valid frame, invalid UTF-8 payload.
        3 => {
            let n = 4 + (rng.next_u64() % 32) as usize;
            let mut payload = vec![0xffu8, 0xfe];
            payload.extend((0..n).map(|_| 0x80 | (rng.next_u64() as u8 & 0x3f)));
            frame(&payload)
        }
        // Valid frame, garbage JSON.
        4 => {
            let junk: &[&str] = &["{", "{\"op\"", "[1,2", "tru", "\"", "{]}", "{,}"];
            frame(junk[(rng.next_u64() as usize) % junk.len()].as_bytes())
        }
        // Valid frame, well-formed JSON that is not an object.
        5 => {
            let junk: &[&str] = &["42", "[\"decide\"]", "null", "\"decide\"", "true"];
            frame(junk[(rng.next_u64() as usize) % junk.len()].as_bytes())
        }
        // Unknown op.
        6 => frame(format!("{{\"id\":1,\"op\":\"op-{}\"}}", rng.next_u64()).as_bytes()),
        // Wrong field types.
        7 => {
            let junk: &[&str] = &[
                "{\"id\":\"one\",\"op\":\"decide\",\"problem\":\"(vars x)\"}",
                "{\"id\":1,\"op\":7,\"problem\":\"x\"}",
                "{\"id\":1,\"op\":\"decide\",\"problem\":42}",
                "{\"id\":1,\"op\":\"decide\",\"problem\":\"(vars x) (formula x)\",\"timeout_ms\":\"soon\"}",
                "{\"id\":1,\"op\":\"session-assert\",\"session\":\"nope\",\"problem\":\"x\"}",
            ];
            frame(junk[(rng.next_u64() as usize) % junk.len()].as_bytes())
        }
        // Zero-length frame.
        8 => frame(b""),
        // Missing required fields / bogus enum values.
        9 => {
            let junk: &[&str] = &[
                "{\"id\":1,\"op\":\"decide\"}",
                "{\"id\":1,\"op\":\"session-assert\",\"session\":1}",
                "{\"id\":1,\"op\":\"decide\",\"problem\":\"(vars x) (formula x)\",\"mode\":\"quantum\"}",
                "{\"id\":1,\"op\":\"decide\",\"problem\":\"(vars x) (formula x)\",\"cnf\":\"magic\"}",
                "{\"id\":1}",
            ];
            frame(junk[(rng.next_u64() as usize) % junk.len()].as_bytes())
        }
        // Debug-op abuse: missing, unknown or mistyped `what` dumps.
        10 => {
            let junk: &[&str] = &[
                "{\"id\":1,\"op\":\"debug\"}",
                "{\"id\":1,\"op\":\"debug\",\"what\":\"heap\"}",
                "{\"id\":1,\"op\":\"debug\",\"what\":7}",
                "{\"id\":1,\"op\":\"debug\",\"what\":[\"slow_requests\"]}",
                "{\"id\":1,\"op\":\"debug\",\"what\":null}",
            ];
            frame(junk[(rng.next_u64() as usize) % junk.len()].as_bytes())
        }
        // Introspection ops with mistyped fields: answered inline by the
        // reader thread, so their error path differs from queued ops.
        _ => {
            let junk: &[&str] = &[
                "{\"id\":\"one\",\"op\":\"metrics\"}",
                "{\"id\":1,\"op\":\"metrics\",\"what\":3}",
                "{\"id\":1,\"op\":\"health\",\"what\":false}",
                "{\"id\":[],\"op\":\"health\"}",
                "{\"id\":1,\"op\":\"stats\",\"what\":{}}",
            ];
            frame(junk[(rng.next_u64() as usize) % junk.len()].as_bytes())
        }
    }
}

const PROBE_PROBLEM: &str =
    "(vars x y) (funs (f 1)) (formula (=> (= x y) (= (f x) (f y))))";

fn probe(addr: &str) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("probe connect: {e}"))?;
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| format!("probe timeout: {e}"))?;
    let reply = client
        .decide(PROBE_PROBLEM, Some(Duration::from_secs(10)))
        .map_err(|e| format!("probe request died: {e}"))?;
    if reply_status(&reply) != "ok" {
        return Err(format!("probe not ok: {reply:?}"));
    }
    Ok(())
}

/// Runs a serve-protocol fuzzing campaign against a fresh in-process
/// server and returns the summary.
pub fn run_serve_fuzz(config: &ServeFuzzConfig) -> ServeFuzzSummary {
    let mut summary = ServeFuzzSummary::default();
    let opts = ServeOptions {
        workers: 2,
        queue_cap: 16,
        ..ServeOptions::default()
    };
    let handle = match Server::bind("127.0.0.1:0", opts) {
        Ok(h) => h,
        Err(e) => {
            summary.failures.push(ServeFuzzFailure {
                case_index: usize::MAX,
                detail: format!("cannot bind fuzz server: {e}"),
                bytes: Vec::new(),
                path: None,
            });
            return summary;
        }
    };
    let addr = handle.local_addr().to_string();

    for case in 0..config.cases {
        let bytes = malformed_bytes(config.seed, case);
        summary.cases_run += 1;
        match send_malformed(&addr, &bytes) {
            Ok(MalformedOutcome::ErrorReply) => summary.error_replies += 1,
            Ok(MalformedOutcome::Closed) => summary.closed += 1,
            Err(detail) => {
                record_failure(config, &mut summary, case, detail, bytes);
            }
        }
        // Every few cases, prove a well-formed request still works —
        // catches stuck readers and leaked workers immediately.
        if case % 8 == 7 {
            match probe(&addr) {
                Ok(()) => summary.probes_ok += 1,
                Err(detail) => {
                    record_failure(
                        config,
                        &mut summary,
                        case,
                        format!("liveness probe failed after case {case}: {detail}"),
                        malformed_bytes(config.seed, case),
                    );
                    break;
                }
            }
        }
        if config.log_every > 0 && (case + 1) % config.log_every == 0 {
            eprintln!("serve-fuzz: {}/{} cases", case + 1, config.cases);
        }
    }

    // Leak check: panic counter zero, drain leaves nothing behind.
    match Client::connect(&*addr).map_err(|e| e.to_string()).and_then(|mut c| {
        c.set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| e.to_string())?;
        c.stats().map_err(|e| e.to_string())
    }) {
        Ok(stats) => {
            let panics = stats
                .get("counters")
                .and_then(|c| c.get("panics"))
                .and_then(|p| p.as_u64())
                .unwrap_or(u64::MAX);
            if panics != 0 {
                summary.failures.push(ServeFuzzFailure {
                    case_index: usize::MAX,
                    detail: format!("server recorded {panics} worker panics"),
                    bytes: Vec::new(),
                    path: None,
                });
            }
        }
        Err(e) => summary.failures.push(ServeFuzzFailure {
            case_index: usize::MAX,
            detail: format!("final stats request failed: {e}"),
            bytes: Vec::new(),
            path: None,
        }),
    }
    let report = handle.shutdown();
    if report.inflight != 0 || report.open_sessions != 0 {
        summary.failures.push(ServeFuzzFailure {
            case_index: usize::MAX,
            detail: format!(
                "leak at shutdown: inflight={} open_sessions={}",
                report.inflight, report.open_sessions
            ),
            bytes: Vec::new(),
            path: None,
        });
    }
    summary
}

enum MalformedOutcome {
    ErrorReply,
    Closed,
}

/// Sends one malformed sequence on a fresh connection. Acceptable server
/// behavior: an `error` reply, a hang-up, or silence (waiting for the
/// rest of a truncated frame — our disconnect then cleans it up).
fn send_malformed(addr: &str, bytes: &[u8]) -> Result<MalformedOutcome, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    client
        .set_read_timeout(Some(Duration::from_millis(500)))
        .map_err(|e| format!("set timeout: {e}"))?;
    client
        .send_bytes(bytes)
        .map_err(|e| format!("send: {e}"))?;
    match client.read_reply() {
        Ok(reply) => {
            if reply_status(&reply) == "error" {
                Ok(MalformedOutcome::ErrorReply)
            } else {
                Err(format!("expected error reply, got {reply:?}"))
            }
        }
        Err(sufsat_serve::ClientError::Closed) => Ok(MalformedOutcome::Closed),
        // A read timeout: the server is (correctly) waiting for more
        // bytes of an incomplete frame. Dropping the connection ends it.
        Err(sufsat_serve::ClientError::Io(e))
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            Ok(MalformedOutcome::Closed)
        }
        Err(e) => Err(format!("reply read failed: {e}")),
    }
}

fn record_failure(
    config: &ServeFuzzConfig,
    summary: &mut ServeFuzzSummary,
    case: usize,
    detail: String,
    bytes: Vec<u8>,
) {
    let path = config.corpus_dir.as_ref().and_then(|dir| {
        write_hex_reproducer(dir, config.seed, case, &detail, &bytes).ok()
    });
    summary.failures.push(ServeFuzzFailure {
        case_index: case,
        detail,
        bytes,
        path,
    });
}

/// Writes `bytes` as a `.hex` reproducer and returns its path.
pub fn write_hex_reproducer(
    dir: &Path,
    seed: u64,
    case: usize,
    detail: &str,
    bytes: &[u8],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("serve-{seed:016x}-{case:05}.hex"));
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "# serve protocol fuzz reproducer")?;
    writeln!(f, "# seed {seed:#018x} case {case}")?;
    writeln!(f, "# {detail}")?;
    writeln!(f, "{}", hex_encode(bytes))?;
    Ok(path)
}

/// Reads a `.hex` reproducer (hex bytes; `#` comments and whitespace
/// ignored) back into the byte sequence it records.
pub fn read_hex_reproducer(path: &Path) -> Result<Vec<u8>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut nibbles = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("");
        for ch in line.chars().filter(|c| !c.is_whitespace()) {
            let v = ch
                .to_digit(16)
                .ok_or_else(|| format!("{}: bad hex digit `{ch}`", path.display()))?;
            nibbles.push(v as u8);
        }
    }
    if nibbles.len() % 2 != 0 {
        return Err(format!("{}: odd number of hex digits", path.display()));
    }
    Ok(nibbles.chunks(2).map(|p| (p[0] << 4) | p[1]).collect())
}

/// Re-sends the bytes of a `.hex` reproducer against a fresh in-process
/// server; `Ok(label)` describes the (acceptable) server behavior.
pub fn replay_hex(path: &Path) -> Result<&'static str, String> {
    let bytes = read_hex_reproducer(path)?;
    let opts = ServeOptions {
        workers: 1,
        queue_cap: 4,
        ..ServeOptions::default()
    };
    let handle =
        Server::bind("127.0.0.1:0", opts).map_err(|e| format!("bind: {e}"))?;
    let addr = handle.local_addr().to_string();
    let outcome = send_malformed(&addr, &bytes);
    let live = probe(&addr);
    let report = handle.shutdown();
    let outcome = outcome?;
    live.map_err(|e| format!("server unresponsive after replay: {e}"))?;
    if report.inflight != 0 || report.open_sessions != 0 {
        return Err(format!(
            "leak after replay: inflight={} open_sessions={}",
            report.inflight, report.open_sessions
        ));
    }
    Ok(match outcome {
        MalformedOutcome::ErrorReply => "error reply",
        MalformedOutcome::Closed => "connection closed",
    })
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let dir = std::env::temp_dir().join(format!("sufsat-hexrt-{}", std::process::id()));
        let bytes = malformed_bytes(7, 3);
        let path = write_hex_reproducer(&dir, 7, 3, "round trip", &bytes).unwrap();
        assert_eq!(read_hex_reproducer(&path).unwrap(), bytes);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn strategies_cover_taxonomy() {
        // Every strategy produces non-degenerate, deterministic bytes.
        for case in 0..12 {
            let a = malformed_bytes(1, case);
            let b = malformed_bytes(1, case);
            assert_eq!(a, b, "strategy {case} must be deterministic");
            assert!(!a.is_empty() || case == 8, "strategy {case} degenerate");
        }
    }

    #[test]
    fn quick_campaign_is_clean() {
        let summary = run_serve_fuzz(&ServeFuzzConfig {
            seed: 42,
            cases: 30,
            corpus_dir: None,
            log_every: 0,
        });
        assert!(
            summary.clean(),
            "serve fuzz failures: {:?}",
            summary.failures
        );
        assert!(summary.probes_ok > 0);
    }
}
