//! Evaluation of SUF terms under concrete interpretations.
//!
//! Used as the semantic ground truth throughout the test suites: validity
//! claims made by the decision procedures are spot-checked by evaluating the
//! formula under concrete (random or reconstructed) interpretations.

use std::collections::HashMap;

use crate::term::{BoolSym, FunSym, PredSym, Term, TermId, TermManager, VarSym};

/// A concrete interpretation of all symbols a formula may mention.
pub trait Interpretation {
    /// Value of an integer symbolic constant.
    fn int_var(&self, v: VarSym) -> i64;
    /// Value of a Boolean symbolic constant.
    fn bool_var(&self, b: BoolSym) -> bool;
    /// Value of a function application.
    fn fun(&self, f: FunSym, args: &[i64]) -> i64;
    /// Value of a predicate application.
    fn pred(&self, p: PredSym, args: &[i64]) -> bool;
}

/// The value of a term: SUF is two-sorted.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum Value {
    /// An integer value.
    Int(i64),
    /// A Boolean value.
    Bool(bool),
}

impl Value {
    /// Extracts the integer, panicking on sort confusion.
    ///
    /// # Panics
    ///
    /// Panics if the value is Boolean.
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(i) => i,
            Value::Bool(_) => panic!("expected integer value"),
        }
    }

    /// Extracts the Boolean, panicking on sort confusion.
    ///
    /// # Panics
    ///
    /// Panics if the value is an integer.
    pub fn as_bool(self) -> bool {
        match self {
            Value::Bool(b) => b,
            Value::Int(_) => panic!("expected Boolean value"),
        }
    }
}

/// Evaluates `root` under `interp`, memoizing over the DAG.
///
/// # Examples
///
/// ```
/// use sufsat_suf::{eval, MapInterpretation, TermManager, Value};
///
/// let mut tm = TermManager::new();
/// let x = tm.int_var("x");
/// let sx = tm.mk_succ(x);
/// let phi = tm.mk_lt(x, sx); // x < x + 1: true everywhere
/// let interp = MapInterpretation::with_seed(42);
/// assert_eq!(eval(&tm, phi, &interp), Value::Bool(true));
/// ```
pub fn eval<I: Interpretation>(tm: &TermManager, root: TermId, interp: &I) -> Value {
    let order = tm.postorder(root);
    let mut memo: HashMap<TermId, Value> = HashMap::with_capacity(order.len());
    for id in order {
        let get = |m: &HashMap<TermId, Value>, c: TermId| m[&c];
        let v = match tm.term(id) {
            Term::True => Value::Bool(true),
            Term::False => Value::Bool(false),
            Term::Not(a) => Value::Bool(!get(&memo, *a).as_bool()),
            Term::And(a, b) => Value::Bool(get(&memo, *a).as_bool() && get(&memo, *b).as_bool()),
            Term::Or(a, b) => Value::Bool(get(&memo, *a).as_bool() || get(&memo, *b).as_bool()),
            Term::Implies(a, b) => {
                Value::Bool(!get(&memo, *a).as_bool() || get(&memo, *b).as_bool())
            }
            Term::Iff(a, b) => Value::Bool(get(&memo, *a).as_bool() == get(&memo, *b).as_bool()),
            Term::IteBool(c, t, e) => {
                if get(&memo, *c).as_bool() {
                    get(&memo, *t)
                } else {
                    get(&memo, *e)
                }
            }
            Term::Eq(a, b) => Value::Bool(get(&memo, *a).as_int() == get(&memo, *b).as_int()),
            Term::Lt(a, b) => Value::Bool(get(&memo, *a).as_int() < get(&memo, *b).as_int()),
            Term::BoolVar(b) => Value::Bool(interp.bool_var(*b)),
            Term::IntVar(v) => Value::Int(interp.int_var(*v)),
            Term::Succ(a) => Value::Int(get(&memo, *a).as_int() + 1),
            Term::Pred(a) => Value::Int(get(&memo, *a).as_int() - 1),
            Term::IteInt(c, t, e) => {
                if get(&memo, *c).as_bool() {
                    get(&memo, *t)
                } else {
                    get(&memo, *e)
                }
            }
            Term::App(f, args) => {
                let vals: Vec<i64> = args.iter().map(|&a| get(&memo, a).as_int()).collect();
                Value::Int(interp.fun(*f, &vals))
            }
            Term::PApp(p, args) => {
                let vals: Vec<i64> = args.iter().map(|&a| get(&memo, a).as_int()).collect();
                Value::Bool(interp.pred(*p, &vals))
            }
        };
        memo.insert(id, v);
    }
    memo[&root]
}

/// A map-backed interpretation with deterministic pseudo-random fallbacks.
///
/// Symbols without explicit entries get values derived by hashing
/// `(seed, symbol, arguments)`, which makes the interpretation total —
/// handy for falsification testing over formulas with arbitrary symbols.
#[derive(Debug, Clone, Default)]
pub struct MapInterpretation {
    /// Explicit integer-constant values.
    pub int_vars: HashMap<VarSym, i64>,
    /// Explicit Boolean-constant values.
    pub bool_vars: HashMap<BoolSym, bool>,
    /// Explicit function-table entries.
    pub fun_tables: HashMap<(FunSym, Vec<i64>), i64>,
    /// Explicit predicate-table entries.
    pub pred_tables: HashMap<(PredSym, Vec<i64>), bool>,
    /// Seed for fallback values.
    pub seed: u64,
    /// Fallback integer values are taken modulo this bound (if nonzero).
    pub fallback_range: i64,
}

impl MapInterpretation {
    /// Creates an interpretation with no explicit entries and the given seed.
    pub fn with_seed(seed: u64) -> MapInterpretation {
        MapInterpretation {
            seed,
            fallback_range: 8,
            ..MapInterpretation::default()
        }
    }

    /// Sets an integer constant.
    pub fn set_int(&mut self, v: VarSym, value: i64) -> &mut Self {
        self.int_vars.insert(v, value);
        self
    }

    /// Sets a Boolean constant.
    pub fn set_bool(&mut self, b: BoolSym, value: bool) -> &mut Self {
        self.bool_vars.insert(b, value);
        self
    }

    fn hash(&self, tag: u64, sym: u64, args: &[i64]) -> u64 {
        // SplitMix64-style mixing: deterministic, well-spread.
        let mut h = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(tag)
            .wrapping_add(sym.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        for &a in args {
            h ^= (a as u64).wrapping_mul(0x94d0_49bb_1331_11eb);
            h = h.rotate_left(27).wrapping_mul(0x2545_f491_4f6c_dd1d);
        }
        h ^= h >> 31;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^ (h >> 33)
    }

    fn fallback_int(&self, tag: u64, sym: u64, args: &[i64]) -> i64 {
        let h = self.hash(tag, sym, args);
        if self.fallback_range > 0 {
            (h % self.fallback_range as u64) as i64
        } else {
            h as i64
        }
    }
}

impl Interpretation for MapInterpretation {
    fn int_var(&self, v: VarSym) -> i64 {
        self.int_vars
            .get(&v)
            .copied()
            .unwrap_or_else(|| self.fallback_int(1, v.index() as u64, &[]))
    }

    fn bool_var(&self, b: BoolSym) -> bool {
        self.bool_vars
            .get(&b)
            .copied()
            .unwrap_or_else(|| self.hash(2, b.index() as u64, &[]) & 1 == 1)
    }

    fn fun(&self, f: FunSym, args: &[i64]) -> i64 {
        self.fun_tables
            .get(&(f, args.to_vec()))
            .copied()
            .unwrap_or_else(|| self.fallback_int(3, f.index() as u64, args))
    }

    fn pred(&self, p: PredSym, args: &[i64]) -> bool {
        self.pred_tables
            .get(&(p, args.to_vec()))
            .copied()
            .unwrap_or_else(|| self.hash(4, p.index() as u64, args) & 1 == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluates_arithmetic_and_comparisons() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let mut interp = MapInterpretation::with_seed(0);
        interp.set_int(tm.find_int_var("x").unwrap(), 3);
        interp.set_int(tm.find_int_var("y").unwrap(), 5);
        let sx = tm.mk_offset(x, 2); // 5
        let phi = tm.mk_eq(sx, y);
        assert_eq!(eval(&tm, phi, &interp), Value::Bool(true));
        let lt = tm.mk_lt(y, sx);
        assert_eq!(eval(&tm, lt, &interp), Value::Bool(false));
    }

    #[test]
    fn evaluates_ite_and_connectives() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let c = tm.mk_lt(x, y);
        let ite = tm.mk_ite_int(c, x, y); // min(x, y)
        let le1 = tm.mk_le(ite, x);
        let le2 = tm.mk_le(ite, y);
        let phi = tm.mk_and(le1, le2); // min <= both: valid
        for seed in 0..20 {
            let interp = MapInterpretation::with_seed(seed);
            assert_eq!(eval(&tm, phi, &interp), Value::Bool(true), "seed {seed}");
        }
    }

    #[test]
    fn functional_consistency_is_respected_by_eval() {
        let mut tm = TermManager::new();
        let f = tm.declare_fun("f", 1);
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let fx = tm.mk_app(f, vec![x]);
        let fy = tm.mk_app(f, vec![y]);
        let hyp = tm.mk_eq(x, y);
        let conc = tm.mk_eq(fx, fy);
        let phi = tm.mk_implies(hyp, conc);
        for seed in 0..50 {
            let interp = MapInterpretation::with_seed(seed);
            assert_eq!(eval(&tm, phi, &interp), Value::Bool(true), "seed {seed}");
        }
    }

    #[test]
    fn explicit_tables_override_fallback() {
        let mut tm = TermManager::new();
        let f = tm.declare_fun("f", 1);
        let x = tm.int_var("x");
        let fx = tm.mk_app(f, vec![x]);
        let mut interp = MapInterpretation::with_seed(7);
        interp.set_int(tm.find_int_var("x").unwrap(), 4);
        interp.fun_tables.insert((f, vec![4]), 99);
        let v = eval(&tm, fx, &interp);
        assert_eq!(v, Value::Int(99));
    }

    #[test]
    fn elimination_preserves_falsifying_interpretations() {
        // If a random interpretation falsifies F_suf, then F_sep (being
        // equi-valid) must be invalid; we spot-check the weaker statement
        // that a formula valid in SUF evaluates true after elimination under
        // interpretations extended to the fresh constants via their origin.
        let mut tm = TermManager::new();
        let f = tm.declare_fun("f", 1);
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let fx = tm.mk_app(f, vec![x]);
        let fy = tm.mk_app(f, vec![y]);
        let hyp = tm.mk_eq(x, y);
        let conc = tm.mk_eq(fx, fy);
        let valid = tm.mk_implies(hyp, conc);
        let elim = crate::elim::eliminate(&mut tm, valid);
        // Build an interpretation for F_sep: fresh constants get the values
        // the original function would produce.
        for seed in 0..25 {
            let base = MapInterpretation::with_seed(seed);
            let mut derived = MapInterpretation::with_seed(seed);
            for (&sym, &(fun, _idx)) in &elim.fresh_int_origin {
                // vf!f!i corresponds to f applied to that instance's args;
                // for this formula instance 0 is f(x), instance 1 is f(y).
                let name = tm.int_var_name(sym).to_owned();
                let arg = if name.ends_with("!0") {
                    base.int_var(tm.find_int_var("x").unwrap())
                } else {
                    base.int_var(tm.find_int_var("y").unwrap())
                };
                derived.set_int(sym, base.fun(fun, &[arg]));
            }
            assert_eq!(
                eval(&tm, elim.formula, &derived),
                Value::Bool(true),
                "seed {seed}"
            );
        }
    }
}
