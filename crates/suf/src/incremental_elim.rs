//! Persistent application elimination for incremental sessions.
//!
//! [`eliminate`](crate::eliminate) rewrites one formula in isolation; an
//! incremental session asserts formulas one at a time and needs the
//! nested-ITE instance tables to *persist*, for two reasons:
//!
//! * functional consistency must hold **across** assertions — `f(x)`
//!   asserted in one frame and `f(y)` in a later one must still satisfy
//!   `x = y ⇒ f(x) = f(y)`, which requires the later chain to compare
//!   against the earlier instance;
//! * re-eliminating from scratch would mint different fresh constants for
//!   the same application, invalidating every cached encoding downstream.
//!
//! The rewrite cache keyed by original term id makes re-assertion of a
//! popped formula free. Chains cached from earlier assertions may mention
//! instances whose asserting frames were since popped; that is sound — a
//! chain over a *superset* of the live instances is exactly the
//! elimination of a formula containing those extra applications in dead
//! positions, and the extra fresh constants are unconstrained.
//!
//! Unlike the one-shot path, p-classification is **not** done here: the
//! polarity of a function depends on the whole asserted conjunction, so
//! the session recomputes it per check (see
//! [`IncrementalElim::p_fresh_vars`]) and falls back to re-encoding when a
//! commitment flips.

use std::collections::{HashMap, HashSet};

use crate::polarity::PolarityInfo;
use crate::term::{FunSym, PredSym, Term, TermId, TermManager, VarSym};

/// Monotone elimination state shared by every assertion of a session.
#[derive(Debug, Clone, Default)]
pub struct IncrementalElim {
    /// Rewrite cache: original term → application-free term.
    cache: HashMap<TermId, TermId>,
    /// Per function symbol, every application instance in elimination
    /// order (eliminated argument terms, fresh constant term).
    fun_instances: HashMap<FunSym, Vec<(Vec<TermId>, TermId)>>,
    /// Per predicate symbol, every application instance in elimination
    /// order.
    pred_instances: HashMap<PredSym, Vec<(Vec<TermId>, TermId)>>,
    /// For each fresh integer constant: the application instance it names.
    fresh_int_origin: HashMap<VarSym, (FunSym, usize)>,
    num_fresh_int: usize,
    num_fresh_bool: usize,
}

impl IncrementalElim {
    /// An empty elimination state.
    pub fn new() -> IncrementalElim {
        IncrementalElim::default()
    }

    /// Eliminates all applications from `root`, reusing cached rewrites
    /// and extending the shared instance tables. Purely structural: no
    /// polarity classification happens here.
    pub fn eliminate(&mut self, tm: &mut TermManager, root: TermId) -> TermId {
        if let Some(&cached) = self.cache.get(&root) {
            return cached;
        }
        for id in tm.postorder(root) {
            if self.cache.contains_key(&id) {
                continue;
            }
            let get = |m: &HashMap<TermId, TermId>, c: TermId| -> TermId {
                *m.get(&c).expect("children mapped before parents")
            };
            let new_id = match tm.term(id).clone() {
                Term::True => tm.mk_true(),
                Term::False => tm.mk_false(),
                Term::Not(a) => {
                    let a = get(&self.cache, a);
                    tm.mk_not(a)
                }
                Term::And(a, b) => {
                    let (a, b) = (get(&self.cache, a), get(&self.cache, b));
                    tm.mk_and(a, b)
                }
                Term::Or(a, b) => {
                    let (a, b) = (get(&self.cache, a), get(&self.cache, b));
                    tm.mk_or(a, b)
                }
                Term::Implies(a, b) => {
                    let (a, b) = (get(&self.cache, a), get(&self.cache, b));
                    tm.mk_implies(a, b)
                }
                Term::Iff(a, b) => {
                    let (a, b) = (get(&self.cache, a), get(&self.cache, b));
                    tm.mk_iff(a, b)
                }
                Term::IteBool(c, t, e) => {
                    let (c, t, e) = (
                        get(&self.cache, c),
                        get(&self.cache, t),
                        get(&self.cache, e),
                    );
                    tm.mk_ite_bool(c, t, e)
                }
                Term::Eq(a, b) => {
                    let (a, b) = (get(&self.cache, a), get(&self.cache, b));
                    tm.mk_eq(a, b)
                }
                Term::Lt(a, b) => {
                    let (a, b) = (get(&self.cache, a), get(&self.cache, b));
                    tm.mk_lt(a, b)
                }
                Term::BoolVar(_) | Term::IntVar(_) => id,
                Term::Succ(a) => {
                    let a = get(&self.cache, a);
                    tm.mk_succ(a)
                }
                Term::Pred(a) => {
                    let a = get(&self.cache, a);
                    tm.mk_pred(a)
                }
                Term::IteInt(c, t, e) => {
                    let (c, t, e) = (
                        get(&self.cache, c),
                        get(&self.cache, t),
                        get(&self.cache, e),
                    );
                    tm.mk_ite_int(c, t, e)
                }
                Term::App(f, args) => {
                    let args: Vec<TermId> = args.iter().map(|&a| get(&self.cache, a)).collect();
                    let instances = self.fun_instances.entry(f).or_default();
                    let instance_index = instances.len();
                    let fname = tm.fun_name(f).to_owned();
                    let fresh = tm.fresh_int_var(&format!("vf!{fname}"));
                    self.num_fresh_int += 1;
                    let Term::IntVar(sym) = *tm.term(fresh) else {
                        unreachable!("fresh_int_var returns an IntVar")
                    };
                    self.fresh_int_origin.insert(sym, (f, instance_index));
                    let prior = instances.clone();
                    instances.push((args.clone(), fresh));
                    build_ite_chain(tm, &args, &prior, fresh, true)
                }
                Term::PApp(p, args) => {
                    let args: Vec<TermId> = args.iter().map(|&a| get(&self.cache, a)).collect();
                    let instances = self.pred_instances.entry(p).or_default();
                    let pname = tm.pred_name(p).to_owned();
                    let fresh = tm.fresh_bool_var(&format!("vp!{pname}"));
                    self.num_fresh_bool += 1;
                    let prior = instances.clone();
                    instances.push((args.clone(), fresh));
                    build_ite_chain(tm, &args, &prior, fresh, false)
                }
            };
            self.cache.insert(id, new_id);
        }
        self.cache[&root]
    }

    /// The fresh integer constants whose originating function is a
    /// p-function under the given (per-check) polarity classification.
    /// Together with `polarity.p_vars()` this forms the session's `V_p`.
    pub fn p_fresh_vars(&self, polarity: &PolarityInfo) -> HashSet<VarSym> {
        self.fresh_int_origin
            .iter()
            .filter(|(_, (f, _))| polarity.is_p_fun(*f))
            .map(|(&v, _)| v)
            .collect()
    }

    /// Per function symbol, every application instance in elimination
    /// order (see [`crate::ElimResult::fun_instances`]).
    pub fn fun_instances(&self) -> &HashMap<FunSym, Vec<(Vec<TermId>, TermId)>> {
        &self.fun_instances
    }

    /// Per predicate symbol, every application instance in elimination
    /// order.
    pub fn pred_instances(&self) -> &HashMap<PredSym, Vec<(Vec<TermId>, TermId)>> {
        &self.pred_instances
    }

    /// For each fresh integer constant: the application instance it names.
    pub fn fresh_int_origin(&self) -> &HashMap<VarSym, (FunSym, usize)> {
        &self.fresh_int_origin
    }

    /// Fresh integer constants introduced so far.
    pub fn num_fresh_int(&self) -> usize {
        self.num_fresh_int
    }

    /// Fresh Boolean constants introduced so far.
    pub fn num_fresh_bool(&self) -> usize {
        self.num_fresh_bool
    }
}

/// Builds `ITE(args = prior₁.args, prior₁.v, ITE(…, fresh))` — identical
/// to the one-shot chain builder, over the persistent instance tables.
fn build_ite_chain(
    tm: &mut TermManager,
    args: &[TermId],
    prior: &[(Vec<TermId>, TermId)],
    fresh: TermId,
    int_sorted: bool,
) -> TermId {
    let mut result = fresh;
    for (prev_args, prev_val) in prior.iter().rev() {
        let eqs: Vec<TermId> = args
            .iter()
            .zip(prev_args)
            .map(|(&a, &b)| tm.mk_eq(a, b))
            .collect();
        let cond = tm.mk_and_many(&eqs);
        result = if int_sorted {
            tm.mk_ite_int(cond, *prev_val, result)
        } else {
            tm.mk_ite_bool(cond, *prev_val, result)
        };
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elim::contains_applications;
    use crate::polarity::analyze_polarity;

    #[test]
    fn instances_persist_across_eliminations() {
        let mut tm = TermManager::new();
        let f = tm.declare_fun("f", 1);
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let fx = tm.mk_app(f, vec![x]);
        let fy = tm.mk_app(f, vec![y]);
        let a1 = tm.mk_lt(fx, y);
        let a2 = tm.mk_lt(fy, x);

        let mut elim = IncrementalElim::new();
        let e1 = elim.eliminate(&mut tm, a1);
        assert!(!contains_applications(&tm, e1));
        assert_eq!(elim.num_fresh_int(), 1);

        // The second assertion's f(y) must chain against f(x) from the
        // first, preserving cross-assertion functional consistency.
        let e2 = elim.eliminate(&mut tm, a2);
        assert!(!contains_applications(&tm, e2));
        assert_eq!(elim.num_fresh_int(), 2);
        assert_eq!(elim.fun_instances()[&f].len(), 2);
        let s = crate::print::print_term(&tm, e2);
        assert!(s.contains("ite"), "second instance chains: {s}");
        assert!(s.contains("vf!f!0") && s.contains("vf!f!1"), "{s}");
    }

    #[test]
    fn repeat_elimination_is_cached_and_stable() {
        let mut tm = TermManager::new();
        let f = tm.declare_fun("f", 1);
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let fx = tm.mk_app(f, vec![x]);
        let phi = tm.mk_eq(fx, y);
        let mut elim = IncrementalElim::new();
        let e1 = elim.eliminate(&mut tm, phi);
        let e2 = elim.eliminate(&mut tm, phi);
        assert_eq!(e1, e2, "re-assertion after a pop reuses the rewrite");
        assert_eq!(elim.num_fresh_int(), 1, "no duplicate instance");
    }

    #[test]
    fn p_classification_is_per_conjunction() {
        let mut tm = TermManager::new();
        let f = tm.declare_fun("f", 1);
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let fx = tm.mk_app(f, vec![x]);
        let fy = tm.mk_app(f, vec![y]);
        let pos = tm.mk_eq(fx, fy); // f positive here
        let neg = tm.mk_lt(fx, y); // f under an inequality here

        let mut elim = IncrementalElim::new();
        elim.eliminate(&mut tm, pos);
        // Under `pos` alone, f is a p-function: both constants in V_p.
        let pol_pos = analyze_polarity(&tm, pos);
        assert_eq!(elim.p_fresh_vars(&pol_pos).len(), 2);
        // Under the conjunction with the inequality, f drops to g.
        elim.eliminate(&mut tm, neg);
        let conj = tm.mk_and(pos, neg);
        let pol_conj = analyze_polarity(&tm, conj);
        assert!(elim.p_fresh_vars(&pol_conj).is_empty());
    }
}
