//! The logic of Separation predicates and Uninterpreted Functions (SUF).
//!
//! This crate implements the term layer of the `sufsat` reproduction of
//! *"A Hybrid SAT-Based Decision Procedure for Separation Logic with
//! Uninterpreted Functions"* (Seshia, Lahiri, Bryant — DAC 2003):
//!
//! * a hash-consed term DAG with a sort-checked builder ([`TermManager`]),
//! * an s-expression parser and printer ([`parse_problem`], [`print_term`]),
//! * polarity analysis with positive-equality classification
//!   ([`analyze_polarity`], paper §2.1.1),
//! * elimination of function and predicate applications by the
//!   Bryant–German–Velev nested-ITE method ([`eliminate`]),
//! * a reference evaluator used as semantic ground truth ([`eval`]).
//!
//! # Examples
//!
//! Deciding formulas happens in `sufsat-core`; this crate builds and
//! transforms them:
//!
//! ```
//! use sufsat_suf::{eliminate, contains_applications, TermManager};
//!
//! let mut tm = TermManager::new();
//! let f = tm.declare_fun("f", 1);
//! let x = tm.int_var("x");
//! let y = tm.int_var("y");
//! let fx = tm.mk_app(f, vec![x]);
//! let fy = tm.mk_app(f, vec![y]);
//! // Functional consistency: x = y => f(x) = f(y).
//! let hyp = tm.mk_eq(x, y);
//! let conc = tm.mk_eq(fx, fy);
//! let phi = tm.mk_implies(hyp, conc);
//! let elim = eliminate(&mut tm, phi);
//! assert!(!contains_applications(&tm, elim.formula));
//! ```

#![warn(missing_docs)]

mod elim;
mod eval;
mod incremental_elim;
mod memory;
mod parse;
mod polarity;
mod print;
mod subst;
mod term;

pub use elim::{contains_applications, eliminate, ElimResult};
pub use incremental_elim::IncrementalElim;
pub use eval::{eval, Interpretation, MapInterpretation, Value};
pub use memory::Memory;
pub use parse::{parse_formula, parse_problem, ParseSufError};
pub use polarity::{analyze_polarity, PolarityInfo, NEG, POS};
pub use print::{print_problem, print_term};
pub use subst::substitute;
pub use term::{BoolSym, FunSym, PredSym, Sort, Term, TermId, TermManager, VarSym};

#[cfg(test)]
mod prop_tests {
    use super::*;
    use sufsat_prng::Prng;

    /// A small random SUF formula builder driven by a recipe of opcodes.
    fn build_random(tm: &mut TermManager, recipe: &[u8], n_vars: usize, with_funs: bool) -> TermId {
        let vars: Vec<TermId> = (0..n_vars).map(|i| tm.int_var(&format!("x{i}"))).collect();
        let f = if with_funs {
            Some(tm.declare_fun("f", 1))
        } else {
            None
        };
        let mut ints: Vec<TermId> = vars.clone();
        let mut bools: Vec<TermId> = vec![tm.mk_true()];
        for (i, &op) in recipe.iter().enumerate() {
            let pick_int = |k: usize, ints: &[TermId]| ints[k % ints.len()];
            let pick_bool = |k: usize, bools: &[TermId]| bools[k % bools.len()];
            match op % 8 {
                0 => {
                    let a = pick_int(i, &ints);
                    let b = pick_int(i / 2 + 1, &ints);
                    let t = tm.mk_eq(a, b);
                    bools.push(t);
                }
                1 => {
                    let a = pick_int(i, &ints);
                    let b = pick_int(i / 3 + 2, &ints);
                    let t = tm.mk_lt(a, b);
                    bools.push(t);
                }
                2 => {
                    let a = pick_bool(i, &bools);
                    let t = tm.mk_not(a);
                    bools.push(t);
                }
                3 => {
                    let a = pick_bool(i, &bools);
                    let b = pick_bool(i + 1, &bools);
                    let t = tm.mk_and(a, b);
                    bools.push(t);
                }
                4 => {
                    let a = pick_bool(i, &bools);
                    let b = pick_bool(i + 1, &bools);
                    let t = tm.mk_or(a, b);
                    bools.push(t);
                }
                5 => {
                    let a = pick_int(i, &ints);
                    let t = tm.mk_succ(a);
                    ints.push(t);
                }
                6 => {
                    let c = pick_bool(i, &bools);
                    let a = pick_int(i, &ints);
                    let b = pick_int(i + 1, &ints);
                    let t = tm.mk_ite_int(c, a, b);
                    ints.push(t);
                }
                _ => {
                    if let Some(f) = f {
                        let a = pick_int(i, &ints);
                        let t = tm.mk_app(f, vec![a]);
                        ints.push(t);
                    }
                }
            }
        }
        *bools.last().expect("at least true")
    }

    fn random_recipe(rng: &mut Prng, max_len: usize) -> Vec<u8> {
        let len = rng.random_range(1..max_len);
        rng.bytes(len)
    }

    #[test]
    fn print_parse_round_trip() {
        let mut rng = Prng::seed_from_u64(0x5_0f_0001);
        for _case in 0..64 {
            let recipe = random_recipe(&mut rng, 40);
            let mut tm = TermManager::new();
            let phi = build_random(&mut tm, &recipe, 4, true);
            let text = print_term(&tm, phi);
            let reparsed = parse_formula(&mut tm, &text).expect("printer output parses");
            assert_eq!(phi, reparsed, "recipe: {recipe:?}");
        }
    }

    #[test]
    fn elimination_removes_all_applications() {
        let mut rng = Prng::seed_from_u64(0x5_0f_0002);
        for _case in 0..64 {
            let recipe = random_recipe(&mut rng, 60);
            let mut tm = TermManager::new();
            let phi = build_random(&mut tm, &recipe, 3, true);
            let elim = eliminate(&mut tm, phi);
            assert!(
                !contains_applications(&tm, elim.formula),
                "recipe: {recipe:?}"
            );
        }
    }

    #[test]
    fn elimination_is_identity_without_applications() {
        let mut rng = Prng::seed_from_u64(0x5_0f_0003);
        for _case in 0..64 {
            let recipe = random_recipe(&mut rng, 60);
            let mut tm = TermManager::new();
            let phi = build_random(&mut tm, &recipe, 3, false);
            let elim = eliminate(&mut tm, phi);
            assert_eq!(elim.formula, phi, "recipe: {recipe:?}");
        }
    }

    #[test]
    fn eval_is_deterministic() {
        let mut rng = Prng::seed_from_u64(0x5_0f_0004);
        for _case in 0..64 {
            let recipe = random_recipe(&mut rng, 40);
            let seed = rng.next_u64();
            let mut tm = TermManager::new();
            let phi = build_random(&mut tm, &recipe, 3, true);
            let interp = MapInterpretation::with_seed(seed);
            let v1 = eval(&tm, phi, &interp);
            let v2 = eval(&tm, phi, &interp);
            assert_eq!(v1, v2, "recipe: {recipe:?}, seed: {seed}");
        }
    }

    #[test]
    fn soundness_spot_check_on_functional_consistency() {
        let mut rng = Prng::seed_from_u64(0x5_0f_0005);
        for _case in 0..64 {
            let seed = rng.next_u64();
            // ITE-chain elimination of a valid formula stays valid under
            // every interpretation of the remaining symbols.
            let mut tm = TermManager::new();
            let f = tm.declare_fun("f", 2);
            let x = tm.int_var("x");
            let y = tm.int_var("y");
            let z = tm.int_var("z");
            let fxy = tm.mk_app(f, vec![x, y]);
            let fxz = tm.mk_app(f, vec![x, z]);
            let hyp = tm.mk_eq(y, z);
            let conc = tm.mk_eq(fxy, fxz);
            let phi = tm.mk_implies(hyp, conc);
            let elim = eliminate(&mut tm, phi);
            // After elimination the formula contains only the ITE chain; it
            // must evaluate true under all interpretations (it is valid).
            let interp = MapInterpretation::with_seed(seed);
            assert_eq!(
                eval(&tm, elim.formula, &interp),
                Value::Bool(true),
                "seed: {seed}"
            );
        }
    }
}
