//! S-expression pretty printing of terms.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::term::{Term, TermId, TermManager};

/// Renders `root` as an s-expression.
///
/// The output uses the operator names accepted by
/// [`parse_formula`](crate::parse_formula), so printing and parsing
/// round-trip (modulo the simplifications performed at construction).
///
/// # Examples
///
/// ```
/// use sufsat_suf::{TermManager, print_term};
///
/// let mut tm = TermManager::new();
/// let x = tm.int_var("x");
/// let y = tm.int_var("y");
/// let sy = tm.mk_succ(y);
/// let phi = tm.mk_lt(x, sy);
/// assert_eq!(print_term(&tm, phi), "(< x (succ y))");
/// ```
pub fn print_term(tm: &TermManager, root: TermId) -> String {
    // Iterative rendering with memoized strings per node; DAG sharing is
    // expanded (the textual form is a tree).
    let order = tm.postorder(root);
    let mut text: Vec<Option<String>> = vec![None; tm.num_nodes()];
    for id in order {
        let s = render(tm, id, &text);
        text[id.index()] = Some(s);
    }
    text[root.index()].take().expect("root rendered")
}

fn render(tm: &TermManager, id: TermId, text: &[Option<String>]) -> String {
    let get = |c: TermId| -> &str { text[c.index()].as_deref().expect("child rendered") };
    match tm.term(id) {
        Term::True => "true".to_owned(),
        Term::False => "false".to_owned(),
        Term::Not(a) => format!("(not {})", get(*a)),
        Term::And(a, b) => format!("(and {} {})", get(*a), get(*b)),
        Term::Or(a, b) => format!("(or {} {})", get(*a), get(*b)),
        Term::Implies(a, b) => format!("(=> {} {})", get(*a), get(*b)),
        Term::Iff(a, b) => format!("(iff {} {})", get(*a), get(*b)),
        Term::IteBool(c, t, e) | Term::IteInt(c, t, e) => {
            format!("(ite {} {} {})", get(*c), get(*t), get(*e))
        }
        Term::Eq(a, b) => format!("(= {} {})", get(*a), get(*b)),
        Term::Lt(a, b) => format!("(< {} {})", get(*a), get(*b)),
        Term::BoolVar(b) => tm.bool_var_name(*b).to_owned(),
        Term::IntVar(v) => tm.int_var_name(*v).to_owned(),
        Term::Succ(a) => format!("(succ {})", get(*a)),
        Term::Pred(a) => format!("(pred {})", get(*a)),
        Term::App(f, args) => {
            let mut s = format!("({}", tm.fun_name(*f));
            for &a in args {
                let _ = write!(s, " {}", get(a));
            }
            s.push(')');
            s
        }
        Term::PApp(p, args) => {
            let mut s = format!("({}", tm.pred_name(*p));
            for &a in args {
                let _ = write!(s, " {}", get(a));
            }
            s.push(')');
            s
        }
    }
}

/// Renders `root` as a complete problem: declaration forms for every
/// symbol occurring in the formula followed by `(formula …)`. The output
/// parses back with [`parse_problem`](crate::parse_problem).
///
/// # Examples
///
/// ```
/// use sufsat_suf::{parse_problem, print_problem, TermManager};
///
/// let mut tm = TermManager::new();
/// let phi = parse_problem(
///     &mut tm,
///     "(vars x y) (funs (f 1)) (formula (=> (= x y) (= (f x) (f y))))",
/// )?;
/// let text = print_problem(&tm, phi);
/// let mut tm2 = TermManager::new();
/// let phi2 = parse_problem(&mut tm2, &text)?;
/// assert_eq!(tm.dag_size(phi), tm2.dag_size(phi2));
/// # Ok::<(), sufsat_suf::ParseSufError>(())
/// ```
pub fn print_problem(tm: &TermManager, root: TermId) -> String {
    let mut int_vars: BTreeSet<String> = BTreeSet::new();
    let mut bool_vars: BTreeSet<String> = BTreeSet::new();
    let mut funs: BTreeSet<(String, usize)> = BTreeSet::new();
    let mut preds: BTreeSet<(String, usize)> = BTreeSet::new();
    for id in tm.postorder(root) {
        match tm.term(id) {
            Term::IntVar(v) => {
                int_vars.insert(tm.int_var_name(*v).to_owned());
            }
            Term::BoolVar(b) => {
                bool_vars.insert(tm.bool_var_name(*b).to_owned());
            }
            Term::App(f, _) => {
                funs.insert((tm.fun_name(*f).to_owned(), tm.fun_arity(*f)));
            }
            Term::PApp(p, _) => {
                preds.insert((tm.pred_name(*p).to_owned(), tm.pred_arity(*p)));
            }
            _ => {}
        }
    }
    let mut out = String::new();
    if !int_vars.is_empty() {
        out.push_str("(vars");
        for v in &int_vars {
            let _ = write!(out, " {v}");
        }
        out.push_str(")\n");
    }
    if !bool_vars.is_empty() {
        out.push_str("(bvars");
        for v in &bool_vars {
            let _ = write!(out, " {v}");
        }
        out.push_str(")\n");
    }
    if !funs.is_empty() {
        out.push_str("(funs");
        for (name, arity) in &funs {
            let _ = write!(out, " ({name} {arity})");
        }
        out.push_str(")\n");
    }
    if !preds.is_empty() {
        out.push_str("(preds");
        for (name, arity) in &preds {
            let _ = write!(out, " ({name} {arity})");
        }
        out.push_str(")\n");
    }
    // Shared non-leaf nodes become sequential let bindings so the textual
    // form stays linear in the DAG size instead of exponential.
    let order = tm.postorder(root);
    let mut refs: Vec<u32> = vec![0; tm.num_nodes()];
    for &id in &order {
        for c in tm.children(id) {
            refs[c.index()] += 1;
        }
    }
    let is_leaf = |id: TermId| {
        matches!(
            tm.term(id),
            Term::True | Term::False | Term::IntVar(_) | Term::BoolVar(_)
        )
    };
    let mut binding_name: Vec<Option<String>> = vec![None; tm.num_nodes()];
    let mut bindings: Vec<(String, String)> = Vec::new();
    let mut text: Vec<Option<String>> = vec![None; tm.num_nodes()];
    for (k, &id) in order.iter().enumerate() {
        let expr = render(tm, id, &text);
        if id != root && refs[id.index()] >= 2 && !is_leaf(id) {
            let name = format!("_s{k}");
            bindings.push((name.clone(), expr));
            binding_name[id.index()] = Some(name.clone());
            text[id.index()] = Some(name);
        } else {
            text[id.index()] = Some(expr);
        }
    }
    let body = text[root.index()].take().expect("root rendered");
    if bindings.is_empty() {
        let _ = writeln!(out, "(formula {body})");
    } else {
        out.push_str("(formula (let (");
        for (name, expr) in &bindings {
            let _ = write!(out, "({name} {expr}) ");
        }
        let _ = writeln!(out, ") {body}))");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::TermManager;

    #[test]
    fn prints_connectives() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let b = tm.bool_var("b");
        let eq = tm.mk_eq(x, y);
        let phi = tm.mk_and(eq, b);
        let s = print_term(&tm, phi);
        // Canonical ordering may swap the operands; accept either.
        assert!(s == "(and (= x y) b)" || s == "(and b (= x y))", "{s}");
    }

    #[test]
    fn prints_applications() {
        let mut tm = TermManager::new();
        let f = tm.declare_fun("f", 2);
        let p = tm.declare_pred("p", 1);
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let fxy = tm.mk_app(f, vec![x, y]);
        let papp = tm.mk_papp(p, vec![fxy]);
        assert_eq!(print_term(&tm, papp), "(p (f x y))");
    }

    #[test]
    fn prints_ite_and_offsets() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let c = tm.bool_var("c");
        let ite = tm.mk_ite_int(c, x, y);
        let px = tm.mk_pred(x);
        let t = tm.mk_lt(ite, px);
        assert_eq!(print_term(&tm, t), "(< (ite c x y) (pred x))");
    }
}
