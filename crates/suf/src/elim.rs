//! Elimination of uninterpreted function and predicate applications
//! (paper §2.1.1, the Bryant–German–Velev nested-ITE method).
//!
//! Each application `f(a⃗ᵢ)` of an uninterpreted function is replaced by a
//! chain of ITEs over fresh symbolic constants `vf₁, vf₂, …`:
//!
//! ```text
//! f(a⃗₁) ↦ vf₁
//! f(a⃗₂) ↦ ITE(a⃗₂ = a⃗₁, vf₁, vf₂)
//! f(a⃗₃) ↦ ITE(a⃗₃ = a⃗₁, vf₁, ITE(a⃗₃ = a⃗₂, vf₂, vf₃))
//! ```
//!
//! which preserves functional consistency by construction. Predicate
//! applications are eliminated the same way over fresh Boolean constants.
//! Fresh constants introduced for *p-functions* (see
//! [`analyze_polarity`](crate::analyze_polarity)) are added to `V_p`, which
//! downstream encoders exploit via the maximal-diversity interpretation.

use std::collections::{HashMap, HashSet};

use crate::polarity::{analyze_polarity, PolarityInfo};
use crate::term::{FunSym, PredSym, Term, TermId, TermManager, VarSym};

/// Output of [`eliminate`]: an application-free formula plus metadata.
#[derive(Debug, Clone)]
pub struct ElimResult {
    /// The transformed formula (`F_sep`): contains no `App`/`PApp` nodes.
    pub formula: TermId,
    /// Symbolic constants in `V_p` *after* elimination: original constants
    /// classified p plus fresh constants of p-functions.
    pub p_vars: HashSet<VarSym>,
    /// For each fresh integer constant: which function application instance
    /// it names (function symbol, instance index).
    pub fresh_int_origin: HashMap<VarSym, (FunSym, usize)>,
    /// Per function symbol, every application instance in elimination
    /// order: the (eliminated, application-free) argument terms and the
    /// fresh constant term naming the instance. The nested-ITE chains pick
    /// the *first* instance whose arguments match, so replaying a model
    /// against the original formula must resolve tables first-wins in this
    /// order.
    pub fun_instances: HashMap<FunSym, Vec<(Vec<TermId>, TermId)>>,
    /// Per predicate symbol, every application instance in elimination
    /// order (see [`ElimResult::fun_instances`]).
    pub pred_instances: HashMap<PredSym, Vec<(Vec<TermId>, TermId)>>,
    /// Number of fresh integer constants introduced.
    pub num_fresh_int: usize,
    /// Number of fresh Boolean constants introduced.
    pub num_fresh_bool: usize,
    /// The polarity analysis the elimination was based on.
    pub polarity: PolarityInfo,
}

/// Eliminates all function and predicate applications from `root`.
///
/// The transformation is validity-preserving: the returned formula is valid
/// iff `root` is valid in SUF.
///
/// # Examples
///
/// ```
/// use sufsat_suf::{eliminate, contains_applications, TermManager};
///
/// let mut tm = TermManager::new();
/// let f = tm.declare_fun("f", 1);
/// let x = tm.int_var("x");
/// let y = tm.int_var("y");
/// let fx = tm.mk_app(f, vec![x]);
/// let fy = tm.mk_app(f, vec![y]);
/// let hyp = tm.mk_eq(x, y);
/// let conc = tm.mk_eq(fx, fy);
/// let phi = tm.mk_implies(hyp, conc);
/// let elim = eliminate(&mut tm, phi);
/// assert!(!contains_applications(&tm, elim.formula));
/// ```
pub fn eliminate(tm: &mut TermManager, root: TermId) -> ElimResult {
    let obs_span = sufsat_obs::span("suf.eliminate");
    let polarity = analyze_polarity(tm, root);
    let order = tm.postorder(root);
    let mut map: HashMap<TermId, TermId> = HashMap::with_capacity(order.len());
    // Previously seen (eliminated) argument vectors per symbol, with the
    // fresh constant naming that instance.
    let mut fun_instances: HashMap<FunSym, Vec<(Vec<TermId>, TermId)>> = HashMap::new();
    let mut pred_instances: HashMap<PredSym, Vec<(Vec<TermId>, TermId)>> = HashMap::new();
    let mut fresh_int_origin: HashMap<VarSym, (FunSym, usize)> = HashMap::new();
    let mut p_vars: HashSet<VarSym> = polarity.p_vars().clone();
    let mut num_fresh_int = 0usize;
    let mut num_fresh_bool = 0usize;

    for id in order {
        let get = |m: &HashMap<TermId, TermId>, c: TermId| -> TermId {
            *m.get(&c).expect("children mapped before parents")
        };
        let new_id = match tm.term(id).clone() {
            Term::True => tm.mk_true(),
            Term::False => tm.mk_false(),
            Term::Not(a) => {
                let a = get(&map, a);
                tm.mk_not(a)
            }
            Term::And(a, b) => {
                let (a, b) = (get(&map, a), get(&map, b));
                tm.mk_and(a, b)
            }
            Term::Or(a, b) => {
                let (a, b) = (get(&map, a), get(&map, b));
                tm.mk_or(a, b)
            }
            Term::Implies(a, b) => {
                let (a, b) = (get(&map, a), get(&map, b));
                tm.mk_implies(a, b)
            }
            Term::Iff(a, b) => {
                let (a, b) = (get(&map, a), get(&map, b));
                tm.mk_iff(a, b)
            }
            Term::IteBool(c, t, e) => {
                let (c, t, e) = (get(&map, c), get(&map, t), get(&map, e));
                tm.mk_ite_bool(c, t, e)
            }
            Term::Eq(a, b) => {
                let (a, b) = (get(&map, a), get(&map, b));
                tm.mk_eq(a, b)
            }
            Term::Lt(a, b) => {
                let (a, b) = (get(&map, a), get(&map, b));
                tm.mk_lt(a, b)
            }
            Term::BoolVar(_) | Term::IntVar(_) => id,
            Term::Succ(a) => {
                let a = get(&map, a);
                tm.mk_succ(a)
            }
            Term::Pred(a) => {
                let a = get(&map, a);
                tm.mk_pred(a)
            }
            Term::IteInt(c, t, e) => {
                let (c, t, e) = (get(&map, c), get(&map, t), get(&map, e));
                tm.mk_ite_int(c, t, e)
            }
            Term::App(f, args) => {
                let args: Vec<TermId> = args.iter().map(|&a| get(&map, a)).collect();
                let instances = fun_instances.entry(f).or_default();
                let instance_index = instances.len();
                let fname = tm.fun_name(f).to_owned();
                let fresh = tm.fresh_int_var(&format!("vf!{fname}"));
                num_fresh_int += 1;
                let Term::IntVar(sym) = *tm.term(fresh) else {
                    unreachable!("fresh_int_var returns an IntVar")
                };
                fresh_int_origin.insert(sym, (f, instance_index));
                if polarity.is_p_fun(f) {
                    p_vars.insert(sym);
                }
                let prior = instances.clone();
                instances.push((args.clone(), fresh));
                build_ite_chain(tm, &args, &prior, fresh, true)
            }
            Term::PApp(p, args) => {
                let args: Vec<TermId> = args.iter().map(|&a| get(&map, a)).collect();
                let instances = pred_instances.entry(p).or_default();
                let pname = tm.pred_name(p).to_owned();
                let fresh = tm.fresh_bool_var(&format!("vp!{pname}"));
                num_fresh_bool += 1;
                let prior = instances.clone();
                instances.push((args.clone(), fresh));
                build_ite_chain(tm, &args, &prior, fresh, false)
            }
        };
        map.insert(id, new_id);
    }

    if obs_span.is_recording() {
        // The paper's p-function split (positive-equality analysis) plus
        // instance counts: how much nested-ITE structure elimination built.
        sufsat_obs::event!(
            "suf.eliminate.done",
            fun_syms = fun_instances.len(),
            fun_instances = fun_instances.values().map(Vec::len).sum::<usize>(),
            pred_syms = pred_instances.len(),
            pred_instances = pred_instances.values().map(Vec::len).sum::<usize>(),
            fresh_int = num_fresh_int,
            fresh_bool = num_fresh_bool,
            p_vars = p_vars.len(),
            p_fun_fraction = polarity.p_fun_app_fraction(tm, root),
        );
    }
    ElimResult {
        formula: map[&root],
        p_vars,
        fresh_int_origin,
        fun_instances,
        pred_instances,
        num_fresh_int,
        num_fresh_bool,
        polarity,
    }
}

/// Builds `ITE(args = prior₁.args, prior₁.v, ITE(…, fresh))`.
fn build_ite_chain(
    tm: &mut TermManager,
    args: &[TermId],
    prior: &[(Vec<TermId>, TermId)],
    fresh: TermId,
    int_sorted: bool,
) -> TermId {
    let mut result = fresh;
    for (prev_args, prev_val) in prior.iter().rev() {
        let eqs: Vec<TermId> = args
            .iter()
            .zip(prev_args)
            .map(|(&a, &b)| tm.mk_eq(a, b))
            .collect();
        let cond = tm.mk_and_many(&eqs);
        result = if int_sorted {
            tm.mk_ite_int(cond, *prev_val, result)
        } else {
            tm.mk_ite_bool(cond, *prev_val, result)
        };
    }
    result
}

/// Whether any uninterpreted function or predicate application remains
/// reachable from `root`.
pub fn contains_applications(tm: &TermManager, root: TermId) -> bool {
    tm.postorder(root)
        .iter()
        .any(|&id| matches!(tm.term(id), Term::App(..) | Term::PApp(..)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::print::print_term;

    #[test]
    fn single_application_becomes_fresh_constant() {
        let mut tm = TermManager::new();
        let f = tm.declare_fun("f", 1);
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let fx = tm.mk_app(f, vec![x]);
        let phi = tm.mk_eq(fx, y);
        let elim = eliminate(&mut tm, phi);
        assert!(!contains_applications(&tm, elim.formula));
        assert_eq!(elim.num_fresh_int, 1);
        // The single application is just replaced by vf!f!0.
        let s = print_term(&tm, elim.formula);
        assert!(s.contains("vf!f!0"), "{s}");
        assert!(!s.contains("ite"), "no chain needed for one instance: {s}");
    }

    #[test]
    fn two_applications_build_a_chain() {
        let mut tm = TermManager::new();
        let f = tm.declare_fun("f", 1);
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let fx = tm.mk_app(f, vec![x]);
        let fy = tm.mk_app(f, vec![y]);
        let hyp = tm.mk_eq(x, y);
        let conc = tm.mk_eq(fx, fy);
        let phi = tm.mk_implies(hyp, conc);
        let elim = eliminate(&mut tm, phi);
        assert!(!contains_applications(&tm, elim.formula));
        assert_eq!(elim.num_fresh_int, 2);
        let s = print_term(&tm, elim.formula);
        // Second instance: ITE(y = x, vf1, vf2) in some canonical spelling.
        assert!(s.contains("ite"), "{s}");
        assert!(s.contains("vf!f!0") && s.contains("vf!f!1"), "{s}");
    }

    #[test]
    fn p_function_constants_enter_v_p() {
        let mut tm = TermManager::new();
        let f = tm.declare_fun("f", 1);
        let g = tm.declare_fun("g", 1);
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let fx = tm.mk_app(f, vec![x]);
        let fy = tm.mk_app(f, vec![y]);
        let gx = tm.mk_app(g, vec![x]);
        // f results only feed a positive equality; g feeds an inequality.
        let pos = tm.mk_eq(fx, fy);
        let ineq = tm.mk_lt(gx, y);
        let phi = tm.mk_and(pos, ineq);
        let elim = eliminate(&mut tm, phi);
        let fresh_f: Vec<VarSym> = elim
            .fresh_int_origin
            .iter()
            .filter(|(_, (sym, _))| *sym == f)
            .map(|(&v, _)| v)
            .collect();
        let fresh_g: Vec<VarSym> = elim
            .fresh_int_origin
            .iter()
            .filter(|(_, (sym, _))| *sym == g)
            .map(|(&v, _)| v)
            .collect();
        assert_eq!(fresh_f.len(), 2);
        assert_eq!(fresh_g.len(), 1);
        for v in fresh_f {
            assert!(elim.p_vars.contains(&v), "f constants are in V_p");
        }
        for v in fresh_g {
            assert!(!elim.p_vars.contains(&v), "g constants are in V_g");
        }
    }

    #[test]
    fn predicates_are_eliminated_with_bool_constants() {
        let mut tm = TermManager::new();
        let p = tm.declare_pred("p", 1);
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let px = tm.mk_papp(p, vec![x]);
        let py = tm.mk_papp(p, vec![y]);
        let hyp = tm.mk_eq(x, y);
        let conc = tm.mk_iff(px, py);
        let phi = tm.mk_implies(hyp, conc);
        let elim = eliminate(&mut tm, phi);
        assert!(!contains_applications(&tm, elim.formula));
        assert_eq!(elim.num_fresh_bool, 2);
        assert_eq!(elim.num_fresh_int, 0);
    }

    #[test]
    fn shared_application_node_eliminated_once() {
        let mut tm = TermManager::new();
        let f = tm.declare_fun("f", 1);
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let fx = tm.mk_app(f, vec![x]);
        // fx used in two atoms: still one instance.
        let a1 = tm.mk_eq(fx, y);
        let a2 = tm.mk_lt(fx, y);
        let phi = tm.mk_and(a1, a2);
        let elim = eliminate(&mut tm, phi);
        assert_eq!(elim.num_fresh_int, 1);
    }

    #[test]
    fn nested_applications_eliminate_innermost_first() {
        let mut tm = TermManager::new();
        let f = tm.declare_fun("f", 1);
        let x = tm.int_var("x");
        let ffx = {
            let fx = tm.mk_app(f, vec![x]);
            tm.mk_app(f, vec![fx])
        };
        let phi = tm.mk_eq(ffx, x);
        let elim = eliminate(&mut tm, phi);
        assert!(!contains_applications(&tm, elim.formula));
        assert_eq!(elim.num_fresh_int, 2);
        let s = print_term(&tm, elim.formula);
        // The outer application's chain compares its (eliminated) argument
        // vf!f!0 with x.
        assert!(s.contains("vf!f!0") && s.contains("vf!f!1"), "{s}");
    }

    #[test]
    fn binary_function_compares_argument_vectors() {
        let mut tm = TermManager::new();
        let f = tm.declare_fun("f", 2);
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let f1 = tm.mk_app(f, vec![x, y]);
        let f2 = tm.mk_app(f, vec![y, x]);
        let phi = tm.mk_eq(f1, f2);
        let elim = eliminate(&mut tm, phi);
        let s = print_term(&tm, elim.formula);
        // Chain condition is a conjunction of two equalities (y=x ∧ x=y
        // simplifies to a single shared node, so just check the ite).
        assert!(s.contains("ite"), "{s}");
        assert_eq!(elim.num_fresh_int, 2);
    }
}
