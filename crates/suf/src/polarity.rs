//! Polarity analysis and positive-equality classification (paper §2.1.1).
//!
//! The decision procedure checks *validity* of a formula `F`. An equation
//! that occurs only *positively* in `F` (under an even number of negations)
//! never needs to be asserted true when searching for a falsifying
//! interpretation, so — by the maximal-diversity argument of Bryant, German
//! and Velev — the symbolic constants that feed only such equations can be
//! given fixed, pairwise-distinct values. Function symbols whose applications
//! flow only into positive equations are *p-functions*; all others
//! (reaching negative equations, inequalities, or argument positions) are
//! *g-functions*. The distinction drives both the `V_p`/`V_g` split of
//! symbolic constants and the cheaper encodings available for `V_p`.

use std::collections::HashSet;

use crate::term::{FunSym, Term, TermId, TermManager, VarSym};

/// Polarity flags of a Boolean node's occurrences.
pub const POS: u8 = 0b01;
/// See [`POS`].
pub const NEG: u8 = 0b10;

/// Result of the polarity + positive-equality analysis over one formula.
#[derive(Debug, Clone)]
pub struct PolarityInfo {
    /// Per-node polarity flags (`POS`/`NEG` bits); zero for unreachable or
    /// integer-sorted nodes.
    flags: Vec<u8>,
    /// Integer nodes that occur in at least one *general* (g) position.
    g_marked: Vec<bool>,
    /// Function symbols classified as p-functions.
    p_funs: HashSet<FunSym>,
    /// Symbolic constants classified into `V_p`.
    p_vars: HashSet<VarSym>,
}

impl PolarityInfo {
    /// Polarity flags of a Boolean node (bitwise [`POS`] / [`NEG`]).
    pub fn flags(&self, id: TermId) -> u8 {
        self.flags[id.index()]
    }

    /// Whether an equation occurs only positively.
    pub fn is_positive_only(&self, id: TermId) -> bool {
        self.flags[id.index()] == POS
    }

    /// Whether the integer node occurs in a general (g) position.
    pub fn is_g_position(&self, id: TermId) -> bool {
        self.g_marked[id.index()]
    }

    /// Whether `f` is a p-function (applications only in p-positions).
    pub fn is_p_fun(&self, f: FunSym) -> bool {
        self.p_funs.contains(&f)
    }

    /// Whether symbolic constant `v` belongs to `V_p`.
    pub fn is_p_var(&self, v: VarSym) -> bool {
        self.p_vars.contains(&v)
    }

    /// The set of `V_p` symbolic constants.
    pub fn p_vars(&self) -> &HashSet<VarSym> {
        &self.p_vars
    }

    /// The set of p-function symbols.
    pub fn p_funs(&self) -> &HashSet<FunSym> {
        &self.p_funs
    }

    /// Fraction of function applications in the formula that are p-function
    /// applications — one of the candidate features studied in the paper's
    /// Section 3.
    pub fn p_fun_app_fraction(&self, tm: &TermManager, root: TermId) -> f64 {
        let mut total = 0usize;
        let mut p = 0usize;
        for id in tm.postorder(root) {
            if let Term::App(f, _) = tm.term(id) {
                total += 1;
                if self.p_funs.contains(f) {
                    p += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            p as f64 / total as f64
        }
    }
}

/// Runs the polarity analysis and positive-equality classification on the
/// validity formula `root`.
///
/// # Examples
///
/// ```
/// use sufsat_suf::{analyze_polarity, TermManager};
///
/// let mut tm = TermManager::new();
/// let f = tm.declare_fun("f", 1);
/// let g = tm.declare_fun("g", 1);
/// let x = tm.int_var("x");
/// let y = tm.int_var("y");
/// let fx = tm.mk_app(f, vec![x]);
/// let fy = tm.mk_app(f, vec![y]);
/// let gx = tm.mk_app(g, vec![x]);
/// // f(x) = f(y)  appears positively; g(x) < y puts g under an inequality.
/// let peq = tm.mk_eq(fx, fy);
/// let ineq = tm.mk_lt(gx, y);
/// let phi = tm.mk_and(peq, ineq);
/// let info = analyze_polarity(&tm, phi);
/// assert!(info.is_p_fun(f));
/// assert!(!info.is_p_fun(g));
/// ```
pub fn analyze_polarity(tm: &TermManager, root: TermId) -> PolarityInfo {
    let n = tm.num_nodes();
    let mut flags = vec![0u8; n];
    let mut g_marked = vec![false; n];

    // Phase 1: propagate polarity through the Boolean structure. Conditions
    // of integer ITEs hang below atoms; they receive both polarities and are
    // traversed as additional Boolean roots.
    let mut worklist: Vec<(TermId, u8)> = vec![(root, POS)];
    while let Some((id, p)) = worklist.pop() {
        let old = flags[id.index()];
        let new = old | p;
        if new == old {
            continue;
        }
        flags[id.index()] = new;
        let added = new & !old;
        let flip = |f: u8| ((f & POS) << 1) | ((f & NEG) >> 1);
        match tm.term(id) {
            Term::Not(a) => worklist.push((*a, flip(added))),
            Term::And(a, b) | Term::Or(a, b) => {
                worklist.push((*a, added));
                worklist.push((*b, added));
            }
            Term::Implies(a, b) => {
                worklist.push((*a, flip(added)));
                worklist.push((*b, added));
            }
            Term::Iff(a, b) => {
                worklist.push((*a, POS | NEG));
                worklist.push((*b, POS | NEG));
            }
            Term::IteBool(c, t, e) => {
                worklist.push((*c, POS | NEG));
                worklist.push((*t, added));
                worklist.push((*e, added));
            }
            Term::Eq(a, b) | Term::Lt(a, b) => {
                // Walk the integer subterms once to find embedded ITE
                // conditions, which act like both-polarity Boolean roots.
                for cond in embedded_conditions(tm, &[*a, *b]) {
                    worklist.push((cond, POS | NEG));
                }
            }
            Term::PApp(_, args) => {
                for cond in embedded_conditions(tm, args) {
                    worklist.push((cond, POS | NEG));
                }
            }
            Term::True | Term::False | Term::BoolVar(_) => {}
            Term::IntVar(_) | Term::Succ(_) | Term::Pred(_) | Term::IteInt(..) | Term::App(..) => {
                unreachable!("integer node in Boolean position")
            }
        }
    }

    // Phase 2: mark integer nodes occurring in general (g) positions, and
    // mark every function-application argument as a g seed (elimination
    // compares arguments under both-polarity ITE conditions). Only nodes
    // reachable from `root` are considered — a manager may hold other
    // formulas too.
    let reachable = tm.postorder(root);
    let mut g_worklist: Vec<TermId> = Vec::new();
    for &id in &reachable {
        let f = flags[id.index()];
        match tm.term(id) {
            Term::Eq(a, b) if f != 0
                && f != POS => {
                    g_worklist.push(*a);
                    g_worklist.push(*b);
                }
            Term::Lt(a, b) if f != 0 => {
                g_worklist.push(*a);
                g_worklist.push(*b);
            }
            Term::PApp(_, args) if f != 0 => g_worklist.extend(args.iter().copied()),
            // Arguments of every reachable application are g seeds, even
            // when the application's own result sits in a p-position.
            Term::App(_, args) => g_worklist.extend(args.iter().copied()),
            _ => {}
        }
    }
    while let Some(id) = g_worklist.pop() {
        if g_marked[id.index()] {
            continue;
        }
        g_marked[id.index()] = true;
        match tm.term(id) {
            Term::Succ(a) | Term::Pred(a) => g_worklist.push(*a),
            Term::IteInt(_, t, e) => {
                g_worklist.push(*t);
                g_worklist.push(*e);
            }
            // The result of an application is a fresh value; g-ness of the
            // result does not flow into the arguments (they are g seeds
            // already), and IntVar is terminal.
            Term::App(..) | Term::IntVar(_) => {}
            _ => unreachable!("Boolean node in integer position"),
        }
    }

    // Phase 3: classify symbols.
    let mut p_funs: HashSet<FunSym> = tm.fun_syms().collect();
    let mut p_vars: HashSet<VarSym> = tm.int_var_syms().collect();
    for &id in &reachable {
        match tm.term(id) {
            Term::App(f, _) if g_marked[id.index()] => {
                p_funs.remove(f);
            }
            Term::IntVar(v) if g_marked[id.index()] => {
                p_vars.remove(v);
            }
            _ => {}
        }
    }

    PolarityInfo {
        flags,
        g_marked,
        p_funs,
        p_vars,
    }
}

/// Collects all `IteInt` conditions reachable from `roots` through
/// integer-sorted nodes only (the conditions themselves are not entered).
fn embedded_conditions(tm: &TermManager, roots: &[TermId]) -> Vec<TermId> {
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    let mut stack: Vec<TermId> = roots.to_vec();
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        match tm.term(id) {
            Term::Succ(a) | Term::Pred(a) => stack.push(*a),
            Term::IteInt(c, t, e) => {
                out.push(*c);
                stack.push(*t);
                stack.push(*e);
            }
            Term::App(_, args) => stack.extend(args.iter().copied()),
            Term::IntVar(_) => {}
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::TermManager;

    #[test]
    fn negation_flips_polarity() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let eq = tm.mk_eq(x, y);
        let phi = tm.mk_not(eq);
        let info = analyze_polarity(&tm, phi);
        assert_eq!(info.flags(eq), NEG);
        assert_eq!(info.flags(phi), POS);
        // x, y feed a negative equation: both are g.
        let (vx, vy) = (tm.find_int_var("x").unwrap(), tm.find_int_var("y").unwrap());
        assert!(!info.is_p_var(vx));
        assert!(!info.is_p_var(vy));
    }

    #[test]
    fn implication_antecedent_is_negative() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let z = tm.int_var("z");
        let ante = tm.mk_eq(x, y);
        let cons = tm.mk_eq(x, z);
        let phi = tm.mk_implies(ante, cons);
        let info = analyze_polarity(&tm, phi);
        assert_eq!(info.flags(ante), NEG);
        assert_eq!(info.flags(cons), POS);
    }

    #[test]
    fn iff_gives_both_polarities() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let b = tm.bool_var("b");
        let eq = tm.mk_eq(x, y);
        let phi = tm.mk_iff(eq, b);
        let info = analyze_polarity(&tm, phi);
        assert_eq!(info.flags(eq), POS | NEG);
    }

    #[test]
    fn shared_equation_accumulates_flags() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let eq = tm.mk_eq(x, y);
        let neq = tm.mk_not(eq);
        let b = tm.bool_var("b");
        let c = tm.bool_var("c");
        let left = tm.mk_and(eq, b);
        let right = tm.mk_and(neq, c);
        let phi = tm.mk_or(left, right);
        let info = analyze_polarity(&tm, phi);
        assert_eq!(info.flags(eq), POS | NEG);
    }

    #[test]
    fn burch_dill_shape_keeps_functions_p() {
        // (x = y) => (f(x) = f(y)): f arguments are g (compared during
        // elimination), but f itself stays p because its *results* only
        // feed the positive equation.
        let mut tm = TermManager::new();
        let f = tm.declare_fun("f", 1);
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let fx = tm.mk_app(f, vec![x]);
        let fy = tm.mk_app(f, vec![y]);
        let hyp = tm.mk_eq(x, y);
        let conc = tm.mk_eq(fx, fy);
        let phi = tm.mk_implies(hyp, conc);
        let info = analyze_polarity(&tm, phi);
        assert!(info.is_p_fun(f));
        // x and y appear under the negative equation (x = y) and as
        // arguments: they are in V_g.
        assert!(!info.is_p_var(tm.find_int_var("x").unwrap()));
        assert!(!info.is_p_var(tm.find_int_var("y").unwrap()));
    }

    #[test]
    fn inequality_makes_function_g() {
        let mut tm = TermManager::new();
        let f = tm.declare_fun("f", 1);
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let fx = tm.mk_app(f, vec![x]);
        let phi = tm.mk_lt(fx, y);
        let info = analyze_polarity(&tm, phi);
        assert!(!info.is_p_fun(f));
        assert!(!info.is_p_var(tm.find_int_var("y").unwrap()));
    }

    #[test]
    fn ite_condition_atoms_get_both_polarities() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let z = tm.int_var("z");
        let w = tm.int_var("w");
        let cond = tm.mk_eq(z, w);
        let ite = tm.mk_ite_int(cond, x, y);
        let phi = tm.mk_eq(ite, x);
        let info = analyze_polarity(&tm, phi);
        assert_eq!(info.flags(cond), POS | NEG);
        // z and w feed a both-polarity equation: g.
        assert!(!info.is_p_var(tm.find_int_var("z").unwrap()));
    }

    #[test]
    fn pure_positive_equality_vars_are_p() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let phi = tm.mk_eq(x, y);
        let info = analyze_polarity(&tm, phi);
        assert!(info.is_p_var(tm.find_int_var("x").unwrap()));
        assert!(info.is_p_var(tm.find_int_var("y").unwrap()));
    }

    #[test]
    fn p_fraction_reflects_mix() {
        let mut tm = TermManager::new();
        let f = tm.declare_fun("f", 1);
        let g = tm.declare_fun("g", 1);
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let fx = tm.mk_app(f, vec![x]);
        let fy = tm.mk_app(f, vec![y]);
        let gx = tm.mk_app(g, vec![x]);
        let pos = tm.mk_eq(fx, fy);
        let ineq = tm.mk_lt(gx, y);
        let phi = tm.mk_and(pos, ineq);
        let info = analyze_polarity(&tm, phi);
        let frac = info.p_fun_app_fraction(&tm, phi);
        assert!((frac - 2.0 / 3.0).abs() < 1e-9, "frac = {frac}");
    }
}
