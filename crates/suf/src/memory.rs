//! Symbolic memories: write histories over an uninterpreted base function.
//!
//! Hardware models constantly read and write register files, store queues
//! and caches. A [`Memory`] is a persistent write history over an
//! uninterpreted base memory `m`; reading address `a` after writes
//! `(a₁,v₁) … (aₙ,vₙ)` produces the ITE chain
//!
//! ```text
//! ITE(a = aₙ, vₙ, … ITE(a = a₁, v₁, m(a)) …)
//! ```
//!
//! which is exactly the read-over-write axiomatization the UCLID lineage
//! models memories with, expressed in plain SUF.

use crate::term::{FunSym, TermId, TermManager};

/// A persistent symbolic memory: an uninterpreted base plus a write history.
///
/// Cloning is cheap-ish (the history is copied); [`Memory::write`] returns
/// a new memory, so different branches of a model can diverge.
///
/// # Examples
///
/// ```
/// use sufsat_suf::{Memory, TermManager};
///
/// let mut tm = TermManager::new();
/// let a = tm.int_var("a");
/// let v = tm.int_var("v");
/// let q = tm.int_var("q");
/// let mem = Memory::new(&mut tm, "m");
/// let mem2 = mem.write(a, v);
/// // Reading the written address yields the written value.
/// let read = mem2.read(&mut tm, a);
/// assert_eq!(read, v);
/// // Reading elsewhere produces the bypass ITE.
/// let other = mem2.read(&mut tm, q);
/// assert_ne!(other, v);
/// ```
#[derive(Debug, Clone)]
pub struct Memory {
    base: FunSym,
    writes: Vec<(TermId, TermId)>,
}

impl Memory {
    /// Creates a fresh memory over a newly declared uninterpreted base
    /// function `name` (arity 1).
    ///
    /// # Panics
    ///
    /// Panics if `name` was already declared with a different arity.
    pub fn new(tm: &mut TermManager, name: &str) -> Memory {
        Memory {
            base: tm.declare_fun(name, 1),
            writes: Vec::new(),
        }
    }

    /// The uninterpreted base function.
    pub fn base(&self) -> FunSym {
        self.base
    }

    /// Number of writes in the history.
    pub fn num_writes(&self) -> usize {
        self.writes.len()
    }

    /// Returns the memory after writing `value` at `addr`.
    pub fn write(&self, addr: TermId, value: TermId) -> Memory {
        let mut next = self.clone();
        next.writes.push((addr, value));
        next
    }

    /// Reads `addr`: the youngest matching write wins, falling back to the
    /// uninterpreted base.
    ///
    /// # Panics
    ///
    /// Panics if `addr` or any recorded write is not integer-sorted
    /// (enforced by the term builder).
    pub fn read(&self, tm: &mut TermManager, addr: TermId) -> TermId {
        let mut out = tm.mk_app(self.base, vec![addr]);
        for &(a, v) in &self.writes {
            let hit = tm.mk_eq(addr, a);
            out = tm.mk_ite_int(hit, v, out);
        }
        out
    }

    /// The write history, oldest first.
    pub fn writes(&self) -> &[(TermId, TermId)] {
        &self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, MapInterpretation, Value};

    #[test]
    fn read_after_write_same_address_folds() {
        let mut tm = TermManager::new();
        let a = tm.int_var("a");
        let v = tm.int_var("v");
        let mem = Memory::new(&mut tm, "m").write(a, v);
        assert_eq!(
            mem.read(&mut tm, a),
            v,
            "exact-address read folds to the value"
        );
    }

    #[test]
    fn youngest_write_wins() {
        let mut tm = TermManager::new();
        let a = tm.int_var("a");
        let v1 = tm.int_var("v1");
        let v2 = tm.int_var("v2");
        let mem = Memory::new(&mut tm, "m").write(a, v1).write(a, v2);
        assert_eq!(mem.read(&mut tm, a), v2);
    }

    #[test]
    fn semantics_match_store_semantics() {
        // Evaluate read-over-write under concrete values for several
        // address aliasing patterns.
        let mut tm = TermManager::new();
        let a1 = tm.int_var("a1");
        let a2 = tm.int_var("a2");
        let q = tm.int_var("q");
        let v1 = tm.int_var("v1");
        let v2 = tm.int_var("v2");
        let mem = Memory::new(&mut tm, "m").write(a1, v1).write(a2, v2);
        let read = mem.read(&mut tm, q);
        for (va1, va2, vq) in [(0i64, 1, 0), (0, 1, 1), (0, 1, 2), (3, 3, 3)] {
            let mut interp = MapInterpretation::with_seed(9);
            interp.set_int(tm.find_int_var("a1").unwrap(), va1);
            interp.set_int(tm.find_int_var("a2").unwrap(), va2);
            interp.set_int(tm.find_int_var("q").unwrap(), vq);
            interp.set_int(tm.find_int_var("v1").unwrap(), 100);
            interp.set_int(tm.find_int_var("v2").unwrap(), 200);
            let got = eval(&tm, read, &interp);
            let expect = if vq == va2 {
                Some(200)
            } else if vq == va1 {
                Some(100)
            } else {
                None // falls through to the uninterpreted base
            };
            match expect {
                Some(v) => assert_eq!(got, Value::Int(v), "a1={va1} a2={va2} q={vq}"),
                None => {
                    // The base value is whatever the fallback interpretation
                    // chooses; just check it is NOT one of the write values.
                    let base_read = tm.mk_app(mem.base(), vec![q]);
                    let base_val = eval(&tm, base_read, &interp);
                    assert_eq!(got, base_val, "a1={va1} a2={va2} q={vq}");
                }
            }
        }
    }

    #[test]
    fn write_is_persistent() {
        let mut tm = TermManager::new();
        let a = tm.int_var("a");
        let v = tm.int_var("v");
        let base = Memory::new(&mut tm, "m");
        let _branch = base.write(a, v);
        assert_eq!(base.num_writes(), 0, "the original history is untouched");
    }
}
