//! Hash-consed term DAG for SUF logic.
//!
//! Terms live in a [`TermManager`] arena and are referenced by [`TermId`].
//! Structural interning guarantees that syntactically equal terms share one
//! node, so DAG-based algorithms (node counting, memoized traversals) are
//! linear in the number of *distinct* subterms — the size measure the paper
//! uses for its benchmarks (100–7500 DAG nodes).

use std::collections::HashMap;
use std::fmt;

/// Index of an interned term inside a [`TermManager`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TermId(u32);

impl TermId {
    /// Dense index of this term within its manager.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An integer symbolic constant (a zero-arity uninterpreted function).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarSym(u32);

impl VarSym {
    /// Dense index of this symbol.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A Boolean symbolic constant (a zero-arity uninterpreted predicate).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BoolSym(u32);

impl BoolSym {
    /// Dense index of this symbol.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An uninterpreted function symbol of arity ≥ 1.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FunSym(u32);

impl FunSym {
    /// Dense index of this symbol.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An uninterpreted predicate symbol of arity ≥ 1.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PredSym(u32);

impl PredSym {
    /// Dense index of this symbol.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The sort of a term: SUF is two-sorted.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Sort {
    /// Integer-valued terms.
    Int,
    /// Boolean-valued terms (formulas).
    Bool,
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Int => write!(f, "Int"),
            Sort::Bool => write!(f, "Bool"),
        }
    }
}

/// The shape of one term node (see the paper's Figure 1 for the SUF syntax).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// Boolean constant `true`.
    True,
    /// Boolean constant `false`.
    False,
    /// Logical negation.
    Not(TermId),
    /// Binary conjunction (n-ary conjunction is folded into a tree).
    And(TermId, TermId),
    /// Binary disjunction.
    Or(TermId, TermId),
    /// Implication `lhs => rhs`.
    Implies(TermId, TermId),
    /// Bi-implication.
    Iff(TermId, TermId),
    /// Boolean if-then-else.
    IteBool(TermId, TermId, TermId),
    /// Integer equality atom.
    Eq(TermId, TermId),
    /// Integer strict less-than atom (the paper's only inequality; the
    /// builder desugars `<=`, `>`, `>=` into `Lt`/`Not`/`succ`).
    Lt(TermId, TermId),
    /// Boolean symbolic constant.
    BoolVar(BoolSym),
    /// Uninterpreted predicate application.
    PApp(PredSym, Vec<TermId>),
    /// Integer symbolic constant.
    IntVar(VarSym),
    /// Successor (`+1`).
    Succ(TermId),
    /// Predecessor (`-1`).
    Pred(TermId),
    /// Integer if-then-else.
    IteInt(TermId, TermId, TermId),
    /// Uninterpreted function application.
    App(FunSym, Vec<TermId>),
}

/// Creates, interns and owns terms plus their symbol tables.
///
/// All term construction goes through `mk_*` methods, which perform sort
/// checking and light simplification (constant folding, `succ(pred(t)) → t`,
/// `ITE(c,a,a) → a`, argument canonicalization of commutative operators).
///
/// # Examples
///
/// ```
/// use sufsat_suf::TermManager;
///
/// let mut tm = TermManager::new();
/// let x = tm.int_var("x");
/// let y = tm.int_var("y");
/// let f = tm.declare_fun("f", 1);
/// let fx = tm.mk_app(f, vec![x]);
/// let fy = tm.mk_app(f, vec![y]);
/// // x = y => f(x) = f(y): functional consistency, a valid formula.
/// let hyp = tm.mk_eq(x, y);
/// let conc = tm.mk_eq(fx, fy);
/// let phi = tm.mk_implies(hyp, conc);
/// assert_eq!(tm.sort(phi), sufsat_suf::Sort::Bool);
/// ```
#[derive(Debug, Default, Clone)]
pub struct TermManager {
    nodes: Vec<Term>,
    sorts: Vec<Sort>,
    intern: HashMap<Term, TermId>,
    int_vars: Vec<String>,
    bool_vars: Vec<String>,
    funs: Vec<(String, usize)>,
    preds: Vec<(String, usize)>,
    int_var_by_name: HashMap<String, VarSym>,
    bool_var_by_name: HashMap<String, BoolSym>,
    fun_by_name: HashMap<String, FunSym>,
    pred_by_name: HashMap<String, PredSym>,
}

impl TermManager {
    /// Creates an empty manager.
    pub fn new() -> TermManager {
        TermManager::default()
    }

    /// Total number of distinct (interned) term nodes — the paper's formula
    /// size measure.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The node stored at `id`.
    pub fn term(&self, id: TermId) -> &Term {
        &self.nodes[id.index()]
    }

    /// The sort of `id`.
    pub fn sort(&self, id: TermId) -> Sort {
        self.sorts[id.index()]
    }

    // ---- symbols ---------------------------------------------------------

    /// Declares (or retrieves) an integer symbolic constant and returns the
    /// term referring to it.
    pub fn int_var(&mut self, name: &str) -> TermId {
        let sym = self.int_var_sym(name);
        self.intern_term(Term::IntVar(sym), Sort::Int)
    }

    /// The term referring to an already-declared integer symbolic constant.
    pub fn var_term(&mut self, v: VarSym) -> TermId {
        assert!(
            v.index() < self.int_vars.len(),
            "unknown integer symbolic constant"
        );
        self.intern_term(Term::IntVar(v), Sort::Int)
    }

    /// The term referring to an already-declared Boolean symbolic constant.
    pub fn bool_var_term(&mut self, b: BoolSym) -> TermId {
        assert!(
            b.index() < self.bool_vars.len(),
            "unknown Boolean symbolic constant"
        );
        self.intern_term(Term::BoolVar(b), Sort::Bool)
    }

    /// Declares (or retrieves) the symbol of an integer symbolic constant.
    pub fn int_var_sym(&mut self, name: &str) -> VarSym {
        if let Some(&s) = self.int_var_by_name.get(name) {
            return s;
        }
        let s = VarSym(self.int_vars.len() as u32);
        self.int_vars.push(name.to_owned());
        self.int_var_by_name.insert(name.to_owned(), s);
        s
    }

    /// Declares (or retrieves) a Boolean symbolic constant term.
    pub fn bool_var(&mut self, name: &str) -> TermId {
        let sym = self.bool_var_sym(name);
        self.intern_term(Term::BoolVar(sym), Sort::Bool)
    }

    /// Declares (or retrieves) the symbol of a Boolean symbolic constant.
    pub fn bool_var_sym(&mut self, name: &str) -> BoolSym {
        if let Some(&s) = self.bool_var_by_name.get(name) {
            return s;
        }
        let s = BoolSym(self.bool_vars.len() as u32);
        self.bool_vars.push(name.to_owned());
        self.bool_var_by_name.insert(name.to_owned(), s);
        s
    }

    /// Declares an uninterpreted function symbol.
    ///
    /// # Panics
    ///
    /// Panics if `arity == 0` (use [`TermManager::int_var`] for symbolic
    /// constants) or if `name` was declared before with a different arity.
    pub fn declare_fun(&mut self, name: &str, arity: usize) -> FunSym {
        assert!(
            arity > 0,
            "zero-arity functions are symbolic constants; use int_var"
        );
        if let Some(&f) = self.fun_by_name.get(name) {
            assert_eq!(
                self.funs[f.index()].1,
                arity,
                "function `{name}` redeclared with different arity"
            );
            return f;
        }
        let f = FunSym(self.funs.len() as u32);
        self.funs.push((name.to_owned(), arity));
        self.fun_by_name.insert(name.to_owned(), f);
        f
    }

    /// Declares an uninterpreted predicate symbol.
    ///
    /// # Panics
    ///
    /// Panics if `arity == 0` (use [`TermManager::bool_var`]) or on an arity
    /// mismatch with a prior declaration.
    pub fn declare_pred(&mut self, name: &str, arity: usize) -> PredSym {
        assert!(
            arity > 0,
            "zero-arity predicates are Boolean constants; use bool_var"
        );
        if let Some(&p) = self.pred_by_name.get(name) {
            assert_eq!(
                self.preds[p.index()].1,
                arity,
                "predicate `{name}` redeclared with different arity"
            );
            return p;
        }
        let p = PredSym(self.preds.len() as u32);
        self.preds.push((name.to_owned(), arity));
        self.pred_by_name.insert(name.to_owned(), p);
        p
    }

    /// Name of an integer symbolic constant.
    pub fn int_var_name(&self, v: VarSym) -> &str {
        &self.int_vars[v.index()]
    }

    /// Name of a Boolean symbolic constant.
    pub fn bool_var_name(&self, b: BoolSym) -> &str {
        &self.bool_vars[b.index()]
    }

    /// Name of a function symbol.
    pub fn fun_name(&self, f: FunSym) -> &str {
        &self.funs[f.index()].0
    }

    /// Arity of a function symbol.
    pub fn fun_arity(&self, f: FunSym) -> usize {
        self.funs[f.index()].1
    }

    /// Name of a predicate symbol.
    pub fn pred_name(&self, p: PredSym) -> &str {
        &self.preds[p.index()].0
    }

    /// Arity of a predicate symbol.
    pub fn pred_arity(&self, p: PredSym) -> usize {
        self.preds[p.index()].1
    }

    /// Number of declared integer symbolic constants.
    pub fn num_int_vars(&self) -> usize {
        self.int_vars.len()
    }

    /// Number of declared Boolean symbolic constants.
    pub fn num_bool_vars(&self) -> usize {
        self.bool_vars.len()
    }

    /// Number of declared function symbols.
    pub fn num_funs(&self) -> usize {
        self.funs.len()
    }

    /// Number of declared predicate symbols.
    pub fn num_preds(&self) -> usize {
        self.preds.len()
    }

    /// Iterates over all declared function symbols.
    pub fn fun_syms(&self) -> impl Iterator<Item = FunSym> + '_ {
        (0..self.funs.len() as u32).map(FunSym)
    }

    /// Iterates over all declared predicate symbols.
    pub fn pred_syms(&self) -> impl Iterator<Item = PredSym> + '_ {
        (0..self.preds.len() as u32).map(PredSym)
    }

    /// Iterates over all declared integer symbolic constants.
    pub fn int_var_syms(&self) -> impl Iterator<Item = VarSym> + '_ {
        (0..self.int_vars.len() as u32).map(VarSym)
    }

    /// Looks up an already-declared integer symbolic constant by name.
    pub fn find_int_var(&self, name: &str) -> Option<VarSym> {
        self.int_var_by_name.get(name).copied()
    }

    /// Looks up an already-declared Boolean symbolic constant by name.
    pub fn find_bool_var(&self, name: &str) -> Option<BoolSym> {
        self.bool_var_by_name.get(name).copied()
    }

    /// Looks up an already-declared function symbol by name.
    pub fn find_fun(&self, name: &str) -> Option<FunSym> {
        self.fun_by_name.get(name).copied()
    }

    /// Looks up an already-declared predicate symbol by name.
    pub fn find_pred(&self, name: &str) -> Option<PredSym> {
        self.pred_by_name.get(name).copied()
    }

    /// Generates an integer symbolic constant with a fresh, unused name based
    /// on `prefix`.
    pub fn fresh_int_var(&mut self, prefix: &str) -> TermId {
        let name = self.fresh_name(prefix);
        self.int_var(&name)
    }

    /// Generates a Boolean symbolic constant with a fresh, unused name.
    pub fn fresh_bool_var(&mut self, prefix: &str) -> TermId {
        let name = self.fresh_name(prefix);
        self.bool_var(&name)
    }

    fn fresh_name(&self, prefix: &str) -> String {
        let mut i = 0usize;
        loop {
            let name = format!("{prefix}!{i}");
            if !self.int_var_by_name.contains_key(&name)
                && !self.bool_var_by_name.contains_key(&name)
            {
                return name;
            }
            i += 1;
        }
    }

    // ---- construction ----------------------------------------------------

    fn intern_term(&mut self, t: Term, sort: Sort) -> TermId {
        if let Some(&id) = self.intern.get(&t) {
            return id;
        }
        let id = TermId(self.nodes.len() as u32);
        self.intern.insert(t.clone(), id);
        self.nodes.push(t);
        self.sorts.push(sort);
        id
    }

    fn expect_sort(&self, t: TermId, want: Sort, context: &str) {
        assert_eq!(
            self.sort(t),
            want,
            "sort error in {context}: expected {want}, got {} for term #{}",
            self.sort(t),
            t.index()
        );
    }

    /// The constant `true`.
    pub fn mk_true(&mut self) -> TermId {
        self.intern_term(Term::True, Sort::Bool)
    }

    /// The constant `false`.
    pub fn mk_false(&mut self) -> TermId {
        self.intern_term(Term::False, Sort::Bool)
    }

    /// Logical negation with double-negation and constant folding.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not Boolean.
    pub fn mk_not(&mut self, t: TermId) -> TermId {
        self.expect_sort(t, Sort::Bool, "not");
        match *self.term(t) {
            Term::True => self.mk_false(),
            Term::False => self.mk_true(),
            Term::Not(inner) => inner,
            _ => self.intern_term(Term::Not(t), Sort::Bool),
        }
    }

    /// Binary conjunction with unit/zero/idempotence folding.
    ///
    /// # Panics
    ///
    /// Panics if either argument is not Boolean.
    pub fn mk_and(&mut self, a: TermId, b: TermId) -> TermId {
        self.expect_sort(a, Sort::Bool, "and");
        self.expect_sort(b, Sort::Bool, "and");
        match (self.term(a), self.term(b)) {
            (Term::False, _) | (_, Term::False) => self.mk_false(),
            (Term::True, _) => b,
            (_, Term::True) => a,
            _ if a == b => a,
            (&Term::Not(inner), _) if inner == b => self.mk_false(),
            (_, &Term::Not(inner)) if inner == a => self.mk_false(),
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.intern_term(Term::And(a, b), Sort::Bool)
            }
        }
    }

    /// Binary disjunction with folding.
    ///
    /// # Panics
    ///
    /// Panics if either argument is not Boolean.
    pub fn mk_or(&mut self, a: TermId, b: TermId) -> TermId {
        self.expect_sort(a, Sort::Bool, "or");
        self.expect_sort(b, Sort::Bool, "or");
        match (self.term(a), self.term(b)) {
            (Term::True, _) | (_, Term::True) => self.mk_true(),
            (Term::False, _) => b,
            (_, Term::False) => a,
            _ if a == b => a,
            (&Term::Not(inner), _) if inner == b => self.mk_true(),
            (_, &Term::Not(inner)) if inner == a => self.mk_true(),
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.intern_term(Term::Or(a, b), Sort::Bool)
            }
        }
    }

    /// N-ary conjunction folded as a balanced tree (keeps DAG depth
    /// logarithmic so downstream iterative passes behave well).
    pub fn mk_and_many(&mut self, ts: &[TermId]) -> TermId {
        match ts.len() {
            0 => self.mk_true(),
            1 => ts[0],
            n => {
                let (l, r) = ts.split_at(n / 2);
                let lt = self.mk_and_many(l);
                let rt = self.mk_and_many(r);
                self.mk_and(lt, rt)
            }
        }
    }

    /// N-ary disjunction folded as a balanced tree.
    pub fn mk_or_many(&mut self, ts: &[TermId]) -> TermId {
        match ts.len() {
            0 => self.mk_false(),
            1 => ts[0],
            n => {
                let (l, r) = ts.split_at(n / 2);
                let lt = self.mk_or_many(l);
                let rt = self.mk_or_many(r);
                self.mk_or(lt, rt)
            }
        }
    }

    /// Implication with folding.
    ///
    /// # Panics
    ///
    /// Panics if either argument is not Boolean.
    pub fn mk_implies(&mut self, a: TermId, b: TermId) -> TermId {
        self.expect_sort(a, Sort::Bool, "implies");
        self.expect_sort(b, Sort::Bool, "implies");
        match (self.term(a), self.term(b)) {
            (Term::True, _) => b,
            (Term::False, _) | (_, Term::True) => self.mk_true(),
            (_, Term::False) => self.mk_not(a),
            _ if a == b => self.mk_true(),
            _ => self.intern_term(Term::Implies(a, b), Sort::Bool),
        }
    }

    /// Bi-implication with folding and argument canonicalization.
    ///
    /// # Panics
    ///
    /// Panics if either argument is not Boolean.
    pub fn mk_iff(&mut self, a: TermId, b: TermId) -> TermId {
        self.expect_sort(a, Sort::Bool, "iff");
        self.expect_sort(b, Sort::Bool, "iff");
        match (self.term(a), self.term(b)) {
            (Term::True, _) => b,
            (_, Term::True) => a,
            (Term::False, _) => self.mk_not(b),
            (_, Term::False) => self.mk_not(a),
            _ if a == b => self.mk_true(),
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.intern_term(Term::Iff(a, b), Sort::Bool)
            }
        }
    }

    /// Exclusive or, desugared to `!(a <-> b)`.
    pub fn mk_xor(&mut self, a: TermId, b: TermId) -> TermId {
        let iff = self.mk_iff(a, b);
        self.mk_not(iff)
    }

    /// Boolean if-then-else with branch/condition folding.
    ///
    /// # Panics
    ///
    /// Panics unless `c`, `t`, `e` are all Boolean.
    pub fn mk_ite_bool(&mut self, c: TermId, t: TermId, e: TermId) -> TermId {
        self.expect_sort(c, Sort::Bool, "ite condition");
        self.expect_sort(t, Sort::Bool, "ite then");
        self.expect_sort(e, Sort::Bool, "ite else");
        match self.term(c) {
            Term::True => return t,
            Term::False => return e,
            _ => {}
        }
        if t == e {
            return t;
        }
        self.intern_term(Term::IteBool(c, t, e), Sort::Bool)
    }

    /// Equality atom with reflexivity folding and canonical argument order.
    ///
    /// # Panics
    ///
    /// Panics unless both arguments are integer-sorted.
    pub fn mk_eq(&mut self, a: TermId, b: TermId) -> TermId {
        self.expect_sort(a, Sort::Int, "eq");
        self.expect_sort(b, Sort::Int, "eq");
        if a == b {
            return self.mk_true();
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.intern_term(Term::Eq(a, b), Sort::Bool)
    }

    /// Strict less-than atom with irreflexivity folding.
    ///
    /// # Panics
    ///
    /// Panics unless both arguments are integer-sorted.
    pub fn mk_lt(&mut self, a: TermId, b: TermId) -> TermId {
        self.expect_sort(a, Sort::Int, "lt");
        self.expect_sort(b, Sort::Int, "lt");
        if a == b {
            return self.mk_false();
        }
        self.intern_term(Term::Lt(a, b), Sort::Bool)
    }

    /// `a <= b`, desugared to `a < succ(b)`.
    pub fn mk_le(&mut self, a: TermId, b: TermId) -> TermId {
        let sb = self.mk_succ(b);
        self.mk_lt(a, sb)
    }

    /// `a > b`, desugared to `b < a`.
    pub fn mk_gt(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_lt(b, a)
    }

    /// `a >= b`, desugared to `b <= a`.
    pub fn mk_ge(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_le(b, a)
    }

    /// `a != b`, desugared to `!(a = b)`.
    pub fn mk_ne(&mut self, a: TermId, b: TermId) -> TermId {
        let eq = self.mk_eq(a, b);
        self.mk_not(eq)
    }

    /// Successor (`t + 1`), folding `succ(pred(t)) → t`.
    ///
    /// # Panics
    ///
    /// Panics unless `t` is integer-sorted.
    pub fn mk_succ(&mut self, t: TermId) -> TermId {
        self.expect_sort(t, Sort::Int, "succ");
        if let Term::Pred(inner) = *self.term(t) {
            return inner;
        }
        self.intern_term(Term::Succ(t), Sort::Int)
    }

    /// Predecessor (`t - 1`), folding `pred(succ(t)) → t`.
    ///
    /// # Panics
    ///
    /// Panics unless `t` is integer-sorted.
    pub fn mk_pred(&mut self, t: TermId) -> TermId {
        self.expect_sort(t, Sort::Int, "pred");
        if let Term::Succ(inner) = *self.term(t) {
            return inner;
        }
        self.intern_term(Term::Pred(t), Sort::Int)
    }

    /// `t + k` as `k` applications of `succ` (negative `k` uses `pred`) —
    /// the paper's unary encoding of numeric constants.
    pub fn mk_offset(&mut self, t: TermId, k: i64) -> TermId {
        let mut out = t;
        if k >= 0 {
            for _ in 0..k {
                out = self.mk_succ(out);
            }
        } else {
            for _ in 0..-k {
                out = self.mk_pred(out);
            }
        }
        out
    }

    /// Integer if-then-else with folding.
    ///
    /// # Panics
    ///
    /// Panics unless `c` is Boolean and `t`, `e` are integer-sorted.
    pub fn mk_ite_int(&mut self, c: TermId, t: TermId, e: TermId) -> TermId {
        self.expect_sort(c, Sort::Bool, "ite condition");
        self.expect_sort(t, Sort::Int, "ite then");
        self.expect_sort(e, Sort::Int, "ite else");
        match self.term(c) {
            Term::True => return t,
            Term::False => return e,
            _ => {}
        }
        if t == e {
            return t;
        }
        self.intern_term(Term::IteInt(c, t, e), Sort::Int)
    }

    /// Uninterpreted function application.
    ///
    /// # Panics
    ///
    /// Panics if the argument count does not match the declared arity or an
    /// argument is not integer-sorted.
    pub fn mk_app(&mut self, f: FunSym, args: Vec<TermId>) -> TermId {
        assert_eq!(
            args.len(),
            self.fun_arity(f),
            "function `{}` applied to {} arguments (arity {})",
            self.fun_name(f),
            args.len(),
            self.fun_arity(f)
        );
        for &a in &args {
            self.expect_sort(a, Sort::Int, "function argument");
        }
        self.intern_term(Term::App(f, args), Sort::Int)
    }

    /// Uninterpreted predicate application.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch or non-integer arguments.
    pub fn mk_papp(&mut self, p: PredSym, args: Vec<TermId>) -> TermId {
        assert_eq!(
            args.len(),
            self.pred_arity(p),
            "predicate `{}` applied to {} arguments (arity {})",
            self.pred_name(p),
            args.len(),
            self.pred_arity(p)
        );
        for &a in &args {
            self.expect_sort(a, Sort::Int, "predicate argument");
        }
        self.intern_term(Term::PApp(p, args), Sort::Bool)
    }

    // ---- traversal -------------------------------------------------------

    /// Children of a node, in order.
    pub fn children(&self, id: TermId) -> Vec<TermId> {
        match self.term(id) {
            Term::True | Term::False | Term::BoolVar(_) | Term::IntVar(_) => vec![],
            Term::Not(a) | Term::Succ(a) | Term::Pred(a) => vec![*a],
            Term::And(a, b)
            | Term::Or(a, b)
            | Term::Implies(a, b)
            | Term::Iff(a, b)
            | Term::Eq(a, b)
            | Term::Lt(a, b) => vec![*a, *b],
            Term::IteBool(c, t, e) | Term::IteInt(c, t, e) => vec![*c, *t, *e],
            Term::App(_, args) | Term::PApp(_, args) => args.clone(),
        }
    }

    /// Iterative post-order (children before parents) traversal from `root`,
    /// visiting each distinct node exactly once.
    ///
    /// The returned order is a valid topological order for bottom-up
    /// memoized passes and never recurses, so arbitrarily deep formulas are
    /// safe.
    pub fn postorder(&self, root: TermId) -> Vec<TermId> {
        let mut order = Vec::new();
        let mut visited = vec![false; self.nodes.len()];
        let mut emitted = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        while let Some(&id) = stack.last() {
            if emitted[id.index()] {
                stack.pop();
                continue;
            }
            if visited[id.index()] {
                stack.pop();
                emitted[id.index()] = true;
                order.push(id);
                continue;
            }
            visited[id.index()] = true;
            for c in self.children(id) {
                if !emitted[c.index()] {
                    stack.push(c);
                }
            }
        }
        order
    }

    /// Number of distinct DAG nodes reachable from `root` — the paper's
    /// benchmark size measure.
    pub fn dag_size(&self, root: TermId) -> usize {
        self.postorder(root).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_shares_nodes() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let e1 = tm.mk_eq(x, y);
        let e2 = tm.mk_eq(y, x);
        assert_eq!(e1, e2, "equality arguments are canonicalized");
        let x2 = tm.int_var("x");
        assert_eq!(x, x2);
    }

    #[test]
    fn simplifications_fold_constants() {
        let mut tm = TermManager::new();
        let t = tm.mk_true();
        let f = tm.mk_false();
        let x = tm.int_var("x");
        assert_eq!(tm.mk_not(t), f);
        assert_eq!(tm.mk_not(f), t);
        let a = tm.bool_var("a");
        let na = tm.mk_not(a);
        assert_eq!(tm.mk_not(na), a);
        assert_eq!(tm.mk_and(a, t), a);
        assert_eq!(tm.mk_and(a, f), f);
        assert_eq!(tm.mk_or(a, f), a);
        assert_eq!(tm.mk_or(a, t), t);
        assert_eq!(tm.mk_implies(f, a), t);
        assert_eq!(tm.mk_iff(a, a), t);
        assert_eq!(tm.mk_eq(x, x), t);
        assert_eq!(tm.mk_lt(x, x), f);
    }

    #[test]
    fn succ_pred_cancel() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let sx = tm.mk_succ(x);
        let psx = tm.mk_pred(sx);
        assert_eq!(psx, x);
        let off = tm.mk_offset(x, 3);
        let back = tm.mk_offset(off, -3);
        assert_eq!(back, x);
    }

    #[test]
    fn ite_folds() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let c = tm.bool_var("c");
        let t = tm.mk_true();
        assert_eq!(tm.mk_ite_int(t, x, y), x);
        assert_eq!(tm.mk_ite_int(c, x, x), x);
    }

    #[test]
    #[should_panic(expected = "sort error")]
    fn sort_mismatch_panics() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let a = tm.bool_var("a");
        let _ = tm.mk_and(x, a);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut tm = TermManager::new();
        let f = tm.declare_fun("f", 2);
        let x = tm.int_var("x");
        let _ = tm.mk_app(f, vec![x]);
    }

    #[test]
    fn postorder_is_topological() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let eq = tm.mk_eq(x, y);
        let lt = tm.mk_lt(x, y);
        let phi = tm.mk_and(eq, lt);
        let order = tm.postorder(phi);
        let pos = |id: TermId| order.iter().position(|&t| t == id).unwrap();
        assert!(pos(x) < pos(eq));
        assert!(pos(y) < pos(eq));
        assert!(pos(eq) < pos(phi));
        assert!(pos(lt) < pos(phi));
        assert_eq!(order.len(), 5);
        assert_eq!(tm.dag_size(phi), 5);
    }

    #[test]
    fn dag_size_shares_subterms() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let eq = tm.mk_eq(x, y);
        // eq appears twice but is one DAG node.
        let phi = tm.mk_or(eq, eq);
        assert_eq!(phi, eq, "idempotent or folds");
        let neq = tm.mk_not(eq);
        let psi = tm.mk_and(eq, neq);
        assert_eq!(tm.term(psi), &Term::False);
    }

    #[test]
    fn deep_formula_does_not_overflow() {
        let mut tm = TermManager::new();
        let mut t = tm.bool_var("b0");
        for i in 1..50_000 {
            let b = tm.bool_var(&format!("b{i}"));
            t = tm.mk_and(t, b);
        }
        // A 50k-deep left spine traverses fine iteratively.
        assert_eq!(tm.dag_size(t), 2 * 50_000 - 1);
    }

    #[test]
    fn fresh_names_avoid_collisions() {
        let mut tm = TermManager::new();
        let a = tm.int_var("v!0");
        let b = tm.fresh_int_var("v");
        assert_ne!(a, b);
    }
}
