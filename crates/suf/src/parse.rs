//! S-expression parsing of SUF problems and formulas.
//!
//! The surface syntax mirrors the printer's output. A *problem* consists of
//! declaration forms followed by a single formula form:
//!
//! ```text
//! (vars x y z)              ; integer symbolic constants
//! (bvars b c)               ; Boolean symbolic constants
//! (funs (f 2) (g 1))        ; uninterpreted functions with arities
//! (preds (p 1))             ; uninterpreted predicates with arities
//! (formula (and (= x y) (< (f x y) (succ z)) (p x) b))
//! ```
//!
//! Within formulas the operators are `true false not and or => iff ite = <
//! <= > >= != succ pred`, where `and`/`or` are n-ary and the comparison sugar
//! is desugared by the term builder. `(let ((name expr) …) body)` binds local
//! names.
//!
//! Instead of a single `(formula …)`, a problem may state hypotheses and a
//! goal — `(assume F)… (prove G)` parses as `(and F…) => G` — and
//! `(define name expr)` introduces reusable named terms:
//!
//! ```text
//! (vars head tail) (funs (sb 1))
//! (define room (< head tail))
//! (assume room)
//! (prove (< head (succ tail)))
//! ```

use std::error::Error;
use std::fmt;

use crate::term::{Sort, TermId, TermManager};

/// Error produced when SUF text is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSufError {
    message: String,
}

impl ParseSufError {
    fn new(message: impl Into<String>) -> ParseSufError {
        ParseSufError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseSufError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "suf parse error: {}", self.message)
    }
}

impl Error for ParseSufError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum SExpr {
    Atom(String),
    List(Vec<SExpr>),
}

fn tokenize(src: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let mut chars = src.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            ';' => {
                // Line comment.
                for c2 in chars.by_ref() {
                    if c2 == '\n' {
                        break;
                    }
                }
            }
            '(' | ')' => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
                tokens.push(c.to_string());
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

fn parse_sexprs(tokens: &[String]) -> Result<Vec<SExpr>, ParseSufError> {
    let mut stack: Vec<Vec<SExpr>> = vec![Vec::new()];
    for tok in tokens {
        match tok.as_str() {
            "(" => stack.push(Vec::new()),
            ")" => {
                let done = stack
                    .pop()
                    .ok_or_else(|| ParseSufError::new("unbalanced `)`"))?;
                let parent = stack
                    .last_mut()
                    .ok_or_else(|| ParseSufError::new("unbalanced `)`"))?;
                parent.push(SExpr::List(done));
            }
            atom => stack
                .last_mut()
                .expect("stack never empty here")
                .push(SExpr::Atom(atom.to_owned())),
        }
    }
    if stack.len() != 1 {
        return Err(ParseSufError::new("unbalanced `(`"));
    }
    Ok(stack.pop().expect("single frame"))
}

/// Parses a full SUF problem (declarations + one `(formula ...)` form) into
/// `tm`, returning the formula term.
///
/// # Errors
///
/// Returns [`ParseSufError`] on syntax errors, unknown identifiers, arity
/// mismatches or sort mismatches.
///
/// # Examples
///
/// ```
/// use sufsat_suf::{parse_problem, TermManager};
///
/// let mut tm = TermManager::new();
/// let phi = parse_problem(
///     &mut tm,
///     "(vars x y) (funs (f 1)) (formula (=> (= x y) (= (f x) (f y))))",
/// )?;
/// assert_eq!(tm.dag_size(phi) > 0, true);
/// # Ok::<(), sufsat_suf::ParseSufError>(())
/// ```
pub fn parse_problem(tm: &mut TermManager, src: &str) -> Result<TermId, ParseSufError> {
    let obs_span = sufsat_obs::span_with!("suf.parse", bytes = src.len());
    let result = parse_problem_inner(tm, src);
    if obs_span.is_recording() {
        match &result {
            Ok(id) => sufsat_obs::event!("suf.parse.done", dag = tm.dag_size(*id)),
            Err(e) => {
                let msg = e.to_string();
                sufsat_obs::event!("suf.parse.error", error = &msg);
            }
        }
    }
    result
}

fn parse_problem_inner(tm: &mut TermManager, src: &str) -> Result<TermId, ParseSufError> {
    let tokens = tokenize(src);
    let forms = parse_sexprs(&tokens)?;
    let mut formula = None;
    let mut assumptions: Vec<TermId> = Vec::new();
    let mut goal: Option<TermId> = None;
    let mut defines = Env::new();
    for form in forms {
        let SExpr::List(items) = form else {
            return Err(ParseSufError::new("top-level forms must be lists"));
        };
        let Some(SExpr::Atom(head)) = items.first() else {
            return Err(ParseSufError::new("empty top-level form"));
        };
        match head.as_str() {
            "vars" => {
                for item in &items[1..] {
                    let SExpr::Atom(name) = item else {
                        return Err(ParseSufError::new("vars entries must be identifiers"));
                    };
                    tm.int_var(name);
                }
            }
            "bvars" => {
                for item in &items[1..] {
                    let SExpr::Atom(name) = item else {
                        return Err(ParseSufError::new("bvars entries must be identifiers"));
                    };
                    tm.bool_var(name);
                }
            }
            "funs" | "preds" => {
                for item in &items[1..] {
                    let SExpr::List(pair) = item else {
                        return Err(ParseSufError::new(
                            "funs/preds entries must be (name arity)",
                        ));
                    };
                    let [SExpr::Atom(name), SExpr::Atom(arity)] = pair.as_slice() else {
                        return Err(ParseSufError::new(
                            "funs/preds entries must be (name arity)",
                        ));
                    };
                    let arity: usize = arity
                        .parse()
                        .map_err(|_| ParseSufError::new(format!("bad arity `{arity}`")))?;
                    if arity == 0 {
                        return Err(ParseSufError::new(
                            "arity 0 not allowed; declare via vars/bvars",
                        ));
                    }
                    if head == "funs" {
                        tm.declare_fun(name, arity);
                    } else {
                        tm.declare_pred(name, arity);
                    }
                }
            }
            "formula" => {
                if items.len() != 2 {
                    return Err(ParseSufError::new("formula form takes one expression"));
                }
                if formula.is_some() {
                    return Err(ParseSufError::new("duplicate formula form"));
                }
                let t = build_in(tm, &items[1], &defines)?;
                if tm.sort(t) != Sort::Bool {
                    return Err(ParseSufError::new("formula must be Boolean"));
                }
                formula = Some(t);
            }
            "define" => {
                // (define name expr): a reusable named term.
                let [_, SExpr::Atom(name), expr] = items.as_slice() else {
                    return Err(ParseSufError::new("define takes a name and an expression"));
                };
                let t = build_in(tm, expr, &defines)?;
                defines.insert(name.clone(), t);
            }
            "assume" => {
                if items.len() != 2 {
                    return Err(ParseSufError::new("assume takes one expression"));
                }
                let t = build_in(tm, &items[1], &defines)?;
                if tm.sort(t) != Sort::Bool {
                    return Err(ParseSufError::new("assumption must be Boolean"));
                }
                assumptions.push(t);
            }
            "prove" => {
                if items.len() != 2 {
                    return Err(ParseSufError::new("prove takes one expression"));
                }
                if goal.is_some() {
                    return Err(ParseSufError::new("duplicate prove form"));
                }
                let t = build_in(tm, &items[1], &defines)?;
                if tm.sort(t) != Sort::Bool {
                    return Err(ParseSufError::new("goal must be Boolean"));
                }
                goal = Some(t);
            }
            other => {
                return Err(ParseSufError::new(format!("unknown form `{other}`")));
            }
        }
    }
    match (formula, goal) {
        (Some(_), Some(_)) => Err(ParseSufError::new(
            "a problem has either (formula ...) or (prove ...), not both",
        )),
        (Some(f), None) if assumptions.is_empty() => Ok(f),
        (Some(_), None) => Err(ParseSufError::new(
            "(assume ...) requires a (prove ...) goal",
        )),
        (None, Some(g)) => {
            let hyp = tm.mk_and_many(&assumptions);
            Ok(tm.mk_implies(hyp, g))
        }
        (None, None) => Err(ParseSufError::new(
            "missing (formula ...) or (prove ...) form",
        )),
    }
}

/// Parses a bare formula expression against the declarations already present
/// in `tm`.
///
/// # Errors
///
/// Returns [`ParseSufError`] on syntax errors or references to undeclared
/// identifiers.
pub fn parse_formula(tm: &mut TermManager, src: &str) -> Result<TermId, ParseSufError> {
    let tokens = tokenize(src);
    let forms = parse_sexprs(&tokens)?;
    if forms.len() != 1 {
        return Err(ParseSufError::new("expected exactly one expression"));
    }
    build(tm, &forms[0])
}

type Env = std::collections::HashMap<String, TermId>;

fn build(tm: &mut TermManager, e: &SExpr) -> Result<TermId, ParseSufError> {
    build_in(tm, e, &Env::new())
}

fn build_in(tm: &mut TermManager, e: &SExpr, env: &Env) -> Result<TermId, ParseSufError> {
    match e {
        SExpr::Atom(a) => match a.as_str() {
            "true" => Ok(tm.mk_true()),
            "false" => Ok(tm.mk_false()),
            name => lookup_atom(tm, name, env),
        },
        SExpr::List(items) => {
            let Some(SExpr::Atom(head)) = items.first() else {
                return Err(ParseSufError::new("operator position must be an atom"));
            };
            if head == "let" {
                // (let ((name expr) ...) body)
                if items.len() != 3 {
                    return Err(ParseSufError::new("let takes a binding list and a body"));
                }
                let SExpr::List(bindings) = &items[1] else {
                    return Err(ParseSufError::new("let bindings must be a list"));
                };
                let mut inner = env.clone();
                for binding in bindings {
                    let SExpr::List(pair) = binding else {
                        return Err(ParseSufError::new("let binding must be (name expr)"));
                    };
                    let [SExpr::Atom(name), expr] = pair.as_slice() else {
                        return Err(ParseSufError::new("let binding must be (name expr)"));
                    };
                    // Bindings see earlier bindings (let*-style).
                    let value = build_in(tm, expr, &inner)?;
                    inner.insert(name.clone(), value);
                }
                return build_in(tm, &items[2], &inner);
            }
            let args: Vec<TermId> = items[1..]
                .iter()
                .map(|x| build_in(tm, x, env))
                .collect::<Result<_, _>>()?;
            apply(tm, head, args)
        }
    }
}

fn lookup_atom(tm: &mut TermManager, name: &str, env: &Env) -> Result<TermId, ParseSufError> {
    // Local bindings shadow declarations; int vars and bool vars occupy
    // separate namespaces, int winning ties (the declaration forms prevent
    // duplicates in practice).
    if let Some(&t) = env.get(name) {
        return Ok(t);
    }
    if tm.find_int_var(name).is_some() {
        return Ok(tm.int_var(name));
    }
    if tm.find_bool_var(name).is_some() {
        return Ok(tm.bool_var(name));
    }
    Err(ParseSufError::new(format!("unknown identifier `{name}`")))
}

fn apply(tm: &mut TermManager, head: &str, args: Vec<TermId>) -> Result<TermId, ParseSufError> {
    let need = |n: usize| -> Result<(), ParseSufError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(ParseSufError::new(format!(
                "operator `{head}` expects {n} arguments, got {}",
                args.len()
            )))
        }
    };
    let check_bool = |tm: &TermManager, args: &[TermId]| -> Result<(), ParseSufError> {
        for &a in args {
            if tm.sort(a) != Sort::Bool {
                return Err(ParseSufError::new(format!(
                    "operator `{head}` expects Boolean arguments"
                )));
            }
        }
        Ok(())
    };
    let check_int = |tm: &TermManager, args: &[TermId]| -> Result<(), ParseSufError> {
        for &a in args {
            if tm.sort(a) != Sort::Int {
                return Err(ParseSufError::new(format!(
                    "operator `{head}` expects integer arguments"
                )));
            }
        }
        Ok(())
    };
    match head {
        "not" => {
            need(1)?;
            check_bool(tm, &args)?;
            Ok(tm.mk_not(args[0]))
        }
        "and" => {
            check_bool(tm, &args)?;
            Ok(tm.mk_and_many(&args))
        }
        "or" => {
            check_bool(tm, &args)?;
            Ok(tm.mk_or_many(&args))
        }
        "=>" => {
            need(2)?;
            check_bool(tm, &args)?;
            Ok(tm.mk_implies(args[0], args[1]))
        }
        "iff" => {
            need(2)?;
            check_bool(tm, &args)?;
            Ok(tm.mk_iff(args[0], args[1]))
        }
        "xor" => {
            need(2)?;
            check_bool(tm, &args)?;
            Ok(tm.mk_xor(args[0], args[1]))
        }
        "ite" => {
            need(3)?;
            if tm.sort(args[0]) != Sort::Bool {
                return Err(ParseSufError::new("ite condition must be Boolean"));
            }
            match (tm.sort(args[1]), tm.sort(args[2])) {
                (Sort::Bool, Sort::Bool) => Ok(tm.mk_ite_bool(args[0], args[1], args[2])),
                (Sort::Int, Sort::Int) => Ok(tm.mk_ite_int(args[0], args[1], args[2])),
                _ => Err(ParseSufError::new("ite branches must share a sort")),
            }
        }
        "=" => {
            need(2)?;
            check_int(tm, &args)?;
            Ok(tm.mk_eq(args[0], args[1]))
        }
        "<" => {
            need(2)?;
            check_int(tm, &args)?;
            Ok(tm.mk_lt(args[0], args[1]))
        }
        "<=" => {
            need(2)?;
            check_int(tm, &args)?;
            Ok(tm.mk_le(args[0], args[1]))
        }
        ">" => {
            need(2)?;
            check_int(tm, &args)?;
            Ok(tm.mk_gt(args[0], args[1]))
        }
        ">=" => {
            need(2)?;
            check_int(tm, &args)?;
            Ok(tm.mk_ge(args[0], args[1]))
        }
        "!=" => {
            need(2)?;
            check_int(tm, &args)?;
            Ok(tm.mk_ne(args[0], args[1]))
        }
        "succ" => {
            need(1)?;
            check_int(tm, &args)?;
            Ok(tm.mk_succ(args[0]))
        }
        "pred" => {
            need(1)?;
            check_int(tm, &args)?;
            Ok(tm.mk_pred(args[0]))
        }
        name => {
            // Function or predicate application.
            if let Some(f) = tm.find_fun(name) {
                if args.len() != tm.fun_arity(f) {
                    return Err(ParseSufError::new(format!(
                        "function `{name}` expects {} arguments, got {}",
                        tm.fun_arity(f),
                        args.len()
                    )));
                }
                check_int(tm, &args)?;
                return Ok(tm.mk_app(f, args));
            }
            if let Some(p) = tm.find_pred(name) {
                if args.len() != tm.pred_arity(p) {
                    return Err(ParseSufError::new(format!(
                        "predicate `{name}` expects {} arguments, got {}",
                        tm.pred_arity(p),
                        args.len()
                    )));
                }
                check_int(tm, &args)?;
                return Ok(tm.mk_papp(p, args));
            }
            Err(ParseSufError::new(format!("unknown operator `{name}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::print::print_term;

    #[test]
    fn parses_a_problem() {
        let mut tm = TermManager::new();
        let phi = parse_problem(
            &mut tm,
            "(vars x y z) (bvars b) (funs (f 1)) (preds (p 2))
             (formula (and (= x y) (< (f z) (succ x)) (p x y) b))",
        )
        .unwrap();
        assert_eq!(tm.sort(phi), Sort::Bool);
        assert!(tm.dag_size(phi) >= 8);
    }

    #[test]
    fn print_parse_round_trip() {
        let mut tm = TermManager::new();
        let phi = parse_problem(
            &mut tm,
            "(vars x y) (funs (f 1))
             (formula (=> (= x y) (= (f x) (f (pred (succ y))))))",
        )
        .unwrap();
        let text = print_term(&tm, phi);
        let reparsed = parse_formula(&mut tm, &text).unwrap();
        assert_eq!(phi, reparsed, "round trip is identity on the DAG");
    }

    #[test]
    fn comparison_sugar_desugars() {
        let mut tm = TermManager::new();
        let phi = parse_problem(&mut tm, "(vars x y) (formula (>= x y))").unwrap();
        // x >= y  ==  y <= x  ==  y < succ(x)
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let sx = tm.mk_succ(x);
        let expect = tm.mk_lt(y, sx);
        assert_eq!(phi, expect);
    }

    #[test]
    fn rejects_unknown_identifier() {
        let mut tm = TermManager::new();
        assert!(parse_problem(&mut tm, "(formula (= x y))").is_err());
    }

    #[test]
    fn rejects_unbalanced_parens() {
        let mut tm = TermManager::new();
        assert!(parse_problem(&mut tm, "(vars x (formula true)").is_err());
        assert!(parse_problem(&mut tm, "(vars x)) (formula true)").is_err());
    }

    #[test]
    fn rejects_sort_errors() {
        let mut tm = TermManager::new();
        assert!(parse_problem(&mut tm, "(vars x) (bvars b) (formula (= x b))").is_err());
        assert!(parse_problem(&mut tm, "(vars x) (formula (and x x))").is_err());
        assert!(parse_problem(&mut tm, "(vars x) (formula x)").is_err());
    }

    #[test]
    fn rejects_arity_errors() {
        let mut tm = TermManager::new();
        assert!(parse_problem(&mut tm, "(vars x) (funs (f 2)) (formula (= (f x) x))").is_err());
    }

    #[test]
    fn assume_prove_desugars_to_implication() {
        let mut tm = TermManager::new();
        let phi = parse_problem(
            &mut tm,
            "(vars a b c)
             (assume (< a b))
             (assume (< b c))
             (prove (< a c))",
        )
        .unwrap();
        let mut tm2 = TermManager::new();
        let direct = parse_problem(
            &mut tm2,
            "(vars a b c) (formula (=> (and (< a b) (< b c)) (< a c)))",
        )
        .unwrap();
        assert_eq!(
            crate::print::print_term(&tm, phi),
            crate::print::print_term(&tm2, direct)
        );
    }

    #[test]
    fn define_introduces_reusable_terms() {
        let mut tm = TermManager::new();
        let phi = parse_problem(
            &mut tm,
            "(vars x y)
             (define mid (ite (< x y) x y))
             (prove (<= mid x))",
        )
        .unwrap();
        assert_eq!(tm.sort(phi), Sort::Bool);
        assert!(tm.dag_size(phi) >= 5);
    }

    #[test]
    fn let_bindings_are_sequential_and_shadow() {
        let mut tm = TermManager::new();
        let phi = parse_problem(
            &mut tm,
            "(vars x)
             (formula (let ((a (succ x)) (b (succ a))) (< x b)))",
        )
        .unwrap();
        // x < x + 2.
        let x = tm.int_var("x");
        let expect = {
            let x2 = tm.mk_offset(x, 2);
            tm.mk_lt(x, x2)
        };
        assert_eq!(phi, expect);
        // Shadowing a declared var inside let.
        let phi2 =
            parse_problem(&mut tm, "(vars q r) (formula (let ((q (succ r))) (< r q)))").unwrap();
        let r = tm.int_var("r");
        let expect2 = {
            let sr = tm.mk_succ(r);
            tm.mk_lt(r, sr)
        };
        assert_eq!(phi2, expect2);
    }

    #[test]
    fn assume_without_prove_is_rejected() {
        let mut tm = TermManager::new();
        assert!(parse_problem(&mut tm, "(vars x) (assume (< x x)) (formula true)").is_err());
        assert!(parse_problem(&mut tm, "(vars x) (assume (< x x))").is_err());
        assert!(parse_problem(&mut tm, "(vars x y) (formula (< x y)) (prove (< x y))").is_err());
    }

    #[test]
    fn let_errors_are_reported() {
        let mut tm = TermManager::new();
        assert!(parse_problem(&mut tm, "(vars x) (formula (let x (< x x)))").is_err());
        assert!(parse_problem(&mut tm, "(vars x) (formula (let ((a)) (< x x)))").is_err());
    }

    #[test]
    fn comments_are_ignored() {
        let mut tm = TermManager::new();
        let phi = parse_problem(
            &mut tm,
            "; header comment\n(vars x) ; trailing\n(formula (= x x))",
        )
        .unwrap();
        assert_eq!(tm.term(phi), &crate::term::Term::True);
    }
}
