//! Capture-free term substitution.
//!
//! Substitution is how symbolic simulation engines (the source of the
//! paper's hardware benchmarks) advance state: the next-state formula is
//! the current one with state variables replaced by update terms.

use std::collections::HashMap;

use crate::term::{Term, TermId, TermManager};

/// Replaces every occurrence of each key of `map` (an arbitrary subterm,
/// not just a variable) with its value, rebuilding parents bottom-up
/// through the simplifying constructors.
///
/// Replacements must preserve sorts; the rebuilt nodes re-simplify, so the
/// result can be smaller than the input.
///
/// # Panics
///
/// Panics if a replacement changes a term's sort (caught by the sort-checked
/// constructors).
///
/// # Examples
///
/// ```
/// use std::collections::HashMap;
/// use sufsat_suf::{substitute, TermManager};
///
/// let mut tm = TermManager::new();
/// let x = tm.int_var("x");
/// let y = tm.int_var("y");
/// let phi = tm.mk_lt(x, y); // x < y
/// let mut map = HashMap::new();
/// map.insert(x, y);
/// let psi = substitute(&mut tm, phi, &map); // y < y
/// assert_eq!(tm.term(psi), &sufsat_suf::Term::False);
/// ```
pub fn substitute(tm: &mut TermManager, root: TermId, map: &HashMap<TermId, TermId>) -> TermId {
    let order = tm.postorder(root);
    let mut out: HashMap<TermId, TermId> = HashMap::with_capacity(order.len());
    for id in order {
        if let Some(&replacement) = map.get(&id) {
            out.insert(id, replacement);
            continue;
        }
        let get = |m: &HashMap<TermId, TermId>, c: TermId| -> TermId { m[&c] };
        let rebuilt = match tm.term(id).clone() {
            Term::True => tm.mk_true(),
            Term::False => tm.mk_false(),
            Term::Not(a) => {
                let a = get(&out, a);
                tm.mk_not(a)
            }
            Term::And(a, b) => {
                let (a, b) = (get(&out, a), get(&out, b));
                tm.mk_and(a, b)
            }
            Term::Or(a, b) => {
                let (a, b) = (get(&out, a), get(&out, b));
                tm.mk_or(a, b)
            }
            Term::Implies(a, b) => {
                let (a, b) = (get(&out, a), get(&out, b));
                tm.mk_implies(a, b)
            }
            Term::Iff(a, b) => {
                let (a, b) = (get(&out, a), get(&out, b));
                tm.mk_iff(a, b)
            }
            Term::IteBool(c, t, e) => {
                let (c, t, e) = (get(&out, c), get(&out, t), get(&out, e));
                tm.mk_ite_bool(c, t, e)
            }
            Term::Eq(a, b) => {
                let (a, b) = (get(&out, a), get(&out, b));
                tm.mk_eq(a, b)
            }
            Term::Lt(a, b) => {
                let (a, b) = (get(&out, a), get(&out, b));
                tm.mk_lt(a, b)
            }
            Term::BoolVar(_) | Term::IntVar(_) => id,
            Term::Succ(a) => {
                let a = get(&out, a);
                tm.mk_succ(a)
            }
            Term::Pred(a) => {
                let a = get(&out, a);
                tm.mk_pred(a)
            }
            Term::IteInt(c, t, e) => {
                let (c, t, e) = (get(&out, c), get(&out, t), get(&out, e));
                tm.mk_ite_int(c, t, e)
            }
            Term::App(f, args) => {
                let args: Vec<TermId> = args.iter().map(|&a| get(&out, a)).collect();
                tm.mk_app(f, args)
            }
            Term::PApp(p, args) => {
                let args: Vec<TermId> = args.iter().map(|&a| get(&out, a)).collect();
                tm.mk_papp(p, args)
            }
        };
        out.insert(id, rebuilt);
    }
    out[&root]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substitutes_variables() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let z = tm.int_var("z");
        let sx = tm.mk_succ(x);
        let phi = tm.mk_lt(sx, y);
        let mut map = HashMap::new();
        map.insert(x, z);
        let psi = substitute(&mut tm, phi, &map);
        let sz = tm.mk_succ(z);
        let expect = tm.mk_lt(sz, y);
        assert_eq!(psi, expect);
    }

    #[test]
    fn substitutes_whole_subterms() {
        let mut tm = TermManager::new();
        let f = tm.declare_fun("f", 1);
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let fx = tm.mk_app(f, vec![x]);
        let phi = tm.mk_eq(fx, y);
        // Replace f(x) (an application, not a variable) by x itself.
        let mut map = HashMap::new();
        map.insert(fx, x);
        let psi = substitute(&mut tm, phi, &map);
        let expect = tm.mk_eq(x, y);
        assert_eq!(psi, expect);
    }

    #[test]
    fn resimplifies_after_substitution() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let eq = tm.mk_eq(x, y);
        let b = tm.bool_var("b");
        let phi = tm.mk_and(eq, b);
        // x := y makes the equality trivially true; the conjunction folds.
        let mut map = HashMap::new();
        map.insert(x, y);
        let psi = substitute(&mut tm, phi, &map);
        assert_eq!(psi, b);
    }

    #[test]
    fn symbolic_step_semantics() {
        // A one-step symbolic simulation: next = ITE(c, cur+1, cur);
        // substituting twice unrolls two steps.
        let mut tm = TermManager::new();
        let cur = tm.int_var("cur");
        let c = tm.bool_var("c");
        let inc = tm.mk_succ(cur);
        let next = tm.mk_ite_int(c, inc, cur);
        let mut map = HashMap::new();
        map.insert(cur, next);
        let two_steps = substitute(&mut tm, next, &map);
        assert!(tm.dag_size(two_steps) > tm.dag_size(next));
    }
}
