//! Reconstruction of integer counterexamples from SAT models.
//!
//! SD-encoded constants read their values directly from their bit inputs;
//! EIJ-encoded classes convert the predicate-variable assignment into bound
//! constraints and solve them with the difference-logic engine; `V_p`
//! constants get globally diverse, well-spaced values above everything else.

use std::collections::HashMap;

use sufsat_sat::Solver;
use sufsat_seplog::{solve_with_disequalities, Bound, DiffResult, Disequality, SepAssignment};
use sufsat_suf::VarSym;

use crate::cnf::SignalMap;
use crate::encoder::{ClassMethod, DecodeInfo, Encoded};

/// Failure to reconstruct an integer model from a satisfying SAT
/// assignment: an EIJ class's active bounds had no integer solution,
/// meaning the transitivity constraints were incomplete. This is always an
/// encoder bug; the fuzzing oracle reports it as a failed certificate
/// instead of crashing the campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeFailure {
    /// Index of the equivalence class whose bounds were inconsistent.
    pub class: usize,
}

impl std::fmt::Display for DecodeFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "EIJ model of class {} has no integer extension: transitivity \
             constraints are incomplete",
            self.class
        )
    }
}

impl std::error::Error for DecodeFailure {}

/// Decodes a satisfying SAT model (a falsifying interpretation of the
/// original formula) into a concrete assignment.
///
/// # Panics
///
/// Panics if an EIJ class's active bounds have no integer solution — which
/// would indicate that the transitivity constraints were incomplete (an
/// internal invariant, heavily tested). [`try_decode_model`] is the
/// non-panicking variant used by the certification path.
pub fn decode_model(encoded: &Encoded, map: &SignalMap, solver: &Solver) -> SepAssignment {
    match try_decode_model(encoded, map, solver) {
        Ok(assignment) => assignment,
        Err(err) => panic!("{err}"),
    }
}

/// Decodes a satisfying SAT model, reporting an inconsistent EIJ class as
/// an error instead of panicking.
///
/// # Errors
///
/// Returns [`DecodeFailure`] if an EIJ class's active bounds have no
/// integer solution (an internal soundness bug in the encoder).
pub fn try_decode_model(
    encoded: &Encoded,
    map: &SignalMap,
    solver: &Solver,
) -> Result<SepAssignment, DecodeFailure> {
    try_decode_model_parts(&encoded.decode, map, solver)
}

/// Decodes a satisfying SAT model from a bare [`DecodeInfo`], for callers
/// (like the incremental session) that assemble decode metadata without a
/// full [`Encoded`] result.
///
/// # Errors
///
/// Returns [`DecodeFailure`] if an EIJ class's active bounds have no
/// integer solution (an internal soundness bug in the encoder).
pub fn try_decode_model_parts(
    decode: &DecodeInfo,
    map: &SignalMap,
    solver: &Solver,
) -> Result<SepAssignment, DecodeFailure> {
    let mut out = SepAssignment::default();

    // Boolean symbolic constants.
    for (&b, &input) in &decode.bool_inputs {
        out.bools.insert(b, map.input_value(solver, input as usize));
    }

    // SD constants: read the genuine bits.
    for (&v, bits) in &decode.sd_bits {
        let mut value = 0i64;
        for (i, &input) in bits.iter().enumerate() {
            if map.input_value(solver, input as usize) {
                value |= 1 << i;
            }
        }
        out.ints.insert(v, value);
    }

    // EIJ classes: gather active bounds per class and solve.
    let eij_class_of: HashMap<VarSym, usize> = decode
        .class_vars
        .iter()
        .enumerate()
        .filter(|&(cid, _)| decode.class_methods[cid] == ClassMethod::Eij)
        .flat_map(|(cid, vars)| vars.iter().map(move |&v| (v, cid)))
        .collect();
    let mut per_class_bounds: HashMap<usize, Vec<Bound>> = HashMap::new();
    let mut per_class_diseqs: HashMap<usize, Vec<Disequality>> = HashMap::new();
    for (tag, &(x, y, c, input)) in decode.eij_bounds.iter().enumerate() {
        let Some(&cid) = eij_class_of.get(&x) else {
            continue;
        };
        let active = map.input_value(solver, input as usize);
        let bound = if active {
            Bound { x, y, c, tag }
        } else {
            Bound {
                x: y,
                y: x,
                c: -c - 1,
                tag,
            }
        };
        per_class_bounds.entry(cid).or_default().push(bound);
    }
    // Equality variables (equality-only classes): true asserts the
    // equality as a bound pair, false asserts the disequality.
    let eq_tag_base = decode.eij_bounds.len();
    for (i, &(x, y, c, input)) in decode.eij_eqs.iter().enumerate() {
        let Some(&cid) = eij_class_of.get(&x) else {
            continue;
        };
        let tag = eq_tag_base + i;
        if map.input_value(solver, input as usize) {
            per_class_bounds
                .entry(cid)
                .or_default()
                .push(Bound { x, y, c, tag });
            per_class_bounds.entry(cid).or_default().push(Bound {
                x: y,
                y: x,
                c: -c,
                tag,
            });
        } else {
            per_class_diseqs
                .entry(cid)
                .or_default()
                .push(Disequality { x, y, c, tag });
        }
    }
    for (cid, vars) in decode.class_vars.iter().enumerate() {
        if decode.class_methods[cid] != ClassMethod::Eij {
            continue;
        }
        let bounds = per_class_bounds.remove(&cid).unwrap_or_default();
        let diseqs = per_class_diseqs.remove(&cid).unwrap_or_default();
        match solve_with_disequalities(&bounds, &diseqs, vars) {
            DiffResult::Sat(model) => {
                // Normalize so the smallest value is 0 (cosmetic).
                let min = model.values().copied().min().unwrap_or(0);
                for (v, val) in model {
                    out.ints.insert(v, val - min);
                }
            }
            DiffResult::Unsat(_) => return Err(DecodeFailure { class: cid }),
        }
    }

    // V_p constants: diverse values above everything assigned so far.
    let stride = 2 * decode.max_abs_offset + 1;
    let base = out.ints.values().copied().max().unwrap_or(0) + stride + 1;
    for (i, &v) in decode.p_vars.iter().enumerate() {
        out.ints.insert(v, base + i as i64 * stride);
    }
    Ok(out)
}
