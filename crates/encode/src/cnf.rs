//! CNF conversion of circuits into the SAT solver.
//!
//! Two conversion modes are provided: classic Tseitin (every used gate gets
//! both implication directions) and polarity-aware Plaisted–Greenbaum
//! (only the implications required by the gate's occurrence polarities) —
//! one of the design choices the benchmark harness ablates.

use std::collections::HashMap;

use sufsat_sat::{Lit, Solver, Var};

use crate::circuit::{Circuit, GateNode, Signal};

/// CNF conversion style.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Default)]
pub enum CnfMode {
    /// Full Tseitin encoding: three clauses per AND gate.
    #[default]
    Tseitin,
    /// Plaisted–Greenbaum: implications only for needed polarities.
    PlaistedGreenbaum,
}

/// Mapping from circuit inputs/gates to SAT variables, produced by
/// [`load_into_solver`]. Needed to decode SAT models back into circuit
/// input assignments.
#[derive(Debug, Clone, Default)]
pub struct SignalMap {
    gate_var: HashMap<usize, Var>,
    input_var: HashMap<u32, Var>,
}

impl SignalMap {
    /// The SAT variable allocated for circuit input `index`, if any gate
    /// using it was loaded.
    pub fn input_var(&self, index: usize) -> Option<Var> {
        self.input_var.get(&(index as u32)).copied()
    }

    /// The SAT literal for a signal, if its gate was loaded.
    pub fn lit(&self, s: Signal) -> Option<Lit> {
        self.gate_var
            .get(&s.gate())
            .map(|&v| Lit::new(v, !s.is_inverted()))
    }

    /// The model value of input `index` from a satisfied solver
    /// (`false` for inputs the encoding never constrained).
    pub fn input_value(&self, solver: &Solver, index: usize) -> bool {
        self.input_var(index)
            .and_then(|v| solver.model_value(v))
            .unwrap_or(false)
    }
}

/// Loads circuit constraints into `solver`:
///
/// * every signal in `assertions` is constrained to be true;
/// * every clause in `clauses` (a disjunction of signals) is asserted.
///
/// Returns the signal-to-variable mapping for model decoding.
pub fn load_into_solver(
    circuit: &Circuit,
    assertions: &[Signal],
    clauses: &[Vec<Signal>],
    mode: CnfMode,
    solver: &mut Solver,
) -> SignalMap {
    let mut loader = IncrementalLoader::new(mode);
    loader.load(circuit, assertions, clauses, solver);
    loader.into_map()
}

/// Resumable CNF loading state for an append-only circuit.
///
/// [`load_into_solver`] converts one snapshot of a circuit in a single
/// shot; an incremental session instead keeps growing its circuit and
/// needs later loads to reuse the gate-to-variable mapping and the
/// already-emitted gate definitions of earlier loads. This struct owns
/// exactly that state (the [`SignalMap`] plus per-gate polarity and
/// emission bookkeeping) while borrowing the circuit and solver only for
/// the duration of each call, so it can persist across checks.
#[derive(Debug, Default)]
pub struct IncrementalLoader {
    mode: CnfMode,
    map: SignalMap,
    /// Needed polarities per gate (PG mode).
    polarity: HashMap<usize, u8>,
    /// Polarities already emitted per gate.
    emitted: HashMap<usize, u8>,
}

impl IncrementalLoader {
    /// An empty loader for the given CNF conversion style.
    pub fn new(mode: CnfMode) -> IncrementalLoader {
        IncrementalLoader {
            mode,
            ..IncrementalLoader::default()
        }
    }

    /// The signal-to-variable mapping accumulated so far.
    pub fn map(&self) -> &SignalMap {
        &self.map
    }

    /// Consumes the loader, returning the accumulated mapping.
    pub fn into_map(self) -> SignalMap {
        self.map
    }

    /// Loads assertions and clauses permanently (unguarded), emitting
    /// gate definitions only for cones not already defined by earlier
    /// calls against the same (append-only) circuit.
    pub fn load(
        &mut self,
        circuit: &Circuit,
        assertions: &[Signal],
        clauses: &[Vec<Signal>],
        solver: &mut Solver,
    ) {
        let mut state = self.worker(circuit, solver);

        // Polarity seeding (only meaningful for Plaisted–Greenbaum).
        for &s in assertions {
            state.require(s, POS);
        }
        for clause in clauses {
            for &l in clause {
                state.require(l, POS);
            }
        }

        // Emit gate definitions bottom-up for everything reachable.
        for &s in assertions {
            state.define(s.gate());
        }
        for clause in clauses {
            for &l in clause {
                state.define(l.gate());
            }
        }

        // Assert top-level constraints.
        for &s in assertions {
            match state.literal(s) {
                Ok(lit) => {
                    state.solver.add_clause([lit]);
                }
                Err(true) => {}
                Err(false) => {
                    state.solver.add_clause([]);
                }
            }
        }
        for clause in clauses {
            let mut lits = Vec::with_capacity(clause.len());
            let mut satisfied = false;
            for &l in clause {
                match state.literal(l) {
                    Ok(lit) => lits.push(lit),
                    Err(true) => {
                        satisfied = true;
                        break;
                    }
                    Err(false) => {}
                }
            }
            if !satisfied {
                state.solver.add_clause(lits);
            }
        }
    }

    /// Loads signal `s` guarded by activation literal `act`: emits the
    /// defining cone (shared, unguarded — gate definitions are universally
    /// valid) and the single guarded clause `¬act ∨ s`, so the assertion
    /// holds exactly when `act` is assumed. A constant-false signal
    /// becomes the unit `¬act` (checks assuming `act` then answer unsat
    /// with `act` in the failed-assumption core); a constant-true signal
    /// needs no clause.
    pub fn load_guarded(
        &mut self,
        circuit: &Circuit,
        act: Lit,
        s: Signal,
        solver: &mut Solver,
    ) {
        let mut state = self.worker(circuit, solver);
        state.require(s, POS);
        state.define(s.gate());
        match state.literal(s) {
            Ok(lit) => {
                state.solver.add_clause([!act, lit]);
            }
            Err(true) => {}
            Err(false) => {
                state.solver.add_clause([!act]);
            }
        }
    }

    /// The SAT literal of a signal, allocating its variable (and emitting
    /// nothing); `Err(value)` for constants.
    pub fn literal_of(
        &mut self,
        circuit: &Circuit,
        s: Signal,
        solver: &mut Solver,
    ) -> Result<Lit, bool> {
        self.worker(circuit, solver).literal(s)
    }

    fn worker<'a>(&'a mut self, circuit: &'a Circuit, solver: &'a mut Solver) -> Loader<'a> {
        Loader {
            circuit,
            mode: self.mode,
            solver,
            map: &mut self.map,
            polarity: &mut self.polarity,
            emitted: &mut self.emitted,
        }
    }
}

const POS: u8 = 0b01;
const NEG: u8 = 0b10;

struct Loader<'a> {
    circuit: &'a Circuit,
    mode: CnfMode,
    solver: &'a mut Solver,
    map: &'a mut SignalMap,
    /// Needed polarities per gate (PG mode).
    polarity: &'a mut HashMap<usize, u8>,
    /// Polarities already emitted per gate.
    emitted: &'a mut HashMap<usize, u8>,
}

impl Loader<'_> {
    /// Records that signal `s` is needed with polarity `p`, propagating
    /// through the fan-in cone.
    fn require(&mut self, s: Signal, p: u8) {
        let mut stack = vec![(s, p)];
        while let Some((s, p)) = stack.pop() {
            let gate = s.gate();
            let gp = if s.is_inverted() { flip(p) } else { p };
            let entry = self.polarity.entry(gate).or_insert(0);
            let added = gp & !*entry;
            if added == 0 {
                continue;
            }
            *entry |= gp;
            if let GateNode::And(a, b) = self.circuit.gate(gate) {
                stack.push((*a, added));
                stack.push((*b, added));
            }
        }
    }

    /// Allocates (if needed) the SAT variable of a gate.
    fn var_of(&mut self, gate: usize) -> Var {
        if let Some(&v) = self.map.gate_var.get(&gate) {
            return v;
        }
        let v = self.solver.new_var();
        self.map.gate_var.insert(gate, v);
        if let GateNode::Input(i) = self.circuit.gate(gate) {
            self.map.input_var.insert(*i, v);
        }
        v
    }

    /// The SAT literal of a signal; `Err(value)` for constants.
    fn literal(&mut self, s: Signal) -> Result<Lit, bool> {
        if s.is_const() {
            return Err(s == Signal::TRUE);
        }
        let v = self.var_of(s.gate());
        Ok(Lit::new(v, !s.is_inverted()))
    }

    /// Emits the defining clauses of the cone rooted at `gate`,
    /// iteratively (post-order).
    fn define(&mut self, root: usize) {
        let mut stack = vec![root];
        while let Some(&gate) = stack.last() {
            let want = match self.mode {
                CnfMode::Tseitin => POS | NEG,
                CnfMode::PlaistedGreenbaum => {
                    self.polarity.get(&gate).copied().unwrap_or(POS | NEG)
                }
            };
            let done = self.emitted.get(&gate).copied().unwrap_or(0);
            if done & want == want {
                stack.pop();
                continue;
            }
            match self.circuit.gate(gate) {
                GateNode::ConstTrue | GateNode::Input(_) => {
                    self.emitted.insert(gate, POS | NEG);
                    stack.pop();
                }
                GateNode::And(a, b) => {
                    let (a, b) = (*a, *b);
                    // Ensure children are defined first.
                    let need_a = !self.defined_enough(a.gate(), want, a.is_inverted());
                    let need_b = !self.defined_enough(b.gate(), want, b.is_inverted());
                    if need_a || need_b {
                        if need_a {
                            stack.push(a.gate());
                        }
                        if need_b {
                            stack.push(b.gate());
                        }
                        continue;
                    }
                    let g = self.var_of(gate);
                    let glit = Lit::new(g, true);
                    let la = self.literal(a);
                    let lb = self.literal(b);
                    let missing = want & !done;
                    if missing & POS != 0 {
                        // g -> a, g -> b.
                        match la {
                            Ok(l) => {
                                self.solver.add_clause([!glit, l]);
                            }
                            Err(true) => {}
                            Err(false) => {
                                self.solver.add_clause([!glit]);
                            }
                        }
                        match lb {
                            Ok(l) => {
                                self.solver.add_clause([!glit, l]);
                            }
                            Err(true) => {}
                            Err(false) => {
                                self.solver.add_clause([!glit]);
                            }
                        }
                    }
                    if missing & NEG != 0 {
                        // a & b -> g.
                        let mut clause = vec![glit];
                        let mut trivially_true = false;
                        for l in [la, lb] {
                            match l {
                                Ok(l) => clause.push(!l),
                                Err(true) => {}
                                Err(false) => trivially_true = true,
                            }
                        }
                        if !trivially_true {
                            self.solver.add_clause(clause);
                        }
                    }
                    self.emitted.insert(gate, done | want);
                    stack.pop();
                }
            }
        }
    }

    /// Whether `gate` already has the polarities it would need as a child
    /// occurring with inversion `inv` of a parent needing `parent_want`.
    fn defined_enough(&self, gate: usize, parent_want: u8, inv: bool) -> bool {
        let want = match self.mode {
            CnfMode::Tseitin => POS | NEG,
            CnfMode::PlaistedGreenbaum => {
                let w = if inv { flip(parent_want) } else { parent_want };
                w & self.polarity.get(&gate).copied().unwrap_or(POS | NEG)
            }
        };
        let done = self.emitted.get(&gate).copied().unwrap_or(0);
        match self.circuit.gate(gate) {
            GateNode::ConstTrue | GateNode::Input(_) => true,
            GateNode::And(..) => done & want == want,
        }
    }
}

fn flip(p: u8) -> u8 {
    ((p & POS) << 1) | ((p & NEG) >> 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufsat_sat::SolveResult;

    fn check_equisat(mode: CnfMode) {
        // Build (a XOR b) AND (a OR c); assert it; enumerate SAT models and
        // compare against circuit evaluation.
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        let x = c.input();
        let ab = c.xor(a, b);
        let ac = c.or(a, x);
        let out = c.and(ab, ac);

        let mut solver = Solver::new();
        let map = load_into_solver(&c, &[out], &[], mode, &mut solver);
        assert_eq!(solver.solve(), SolveResult::Sat);
        let ins = [
            map.input_value(&solver, 0),
            map.input_value(&solver, 1),
            map.input_value(&solver, 2),
        ];
        assert!(c.eval(out, &ins), "decoded model satisfies the circuit");
    }

    #[test]
    fn tseitin_model_satisfies_circuit() {
        check_equisat(CnfMode::Tseitin);
    }

    #[test]
    fn plaisted_greenbaum_model_satisfies_circuit() {
        check_equisat(CnfMode::PlaistedGreenbaum);
    }

    #[test]
    fn unsat_circuits_are_unsat() {
        for mode in [CnfMode::Tseitin, CnfMode::PlaistedGreenbaum] {
            let mut c = Circuit::new();
            let a = c.input();
            let b = c.input();
            let ab = c.and(a, b);
            let n = c.and(!a, b);
            let both = c.and(ab, n);
            let mut solver = Solver::new();
            load_into_solver(&c, &[both], &[], mode, &mut solver);
            assert_eq!(solver.solve(), SolveResult::Unsat, "{mode:?}");
        }
    }

    #[test]
    fn extra_clauses_constrain_inputs() {
        for mode in [CnfMode::Tseitin, CnfMode::PlaistedGreenbaum] {
            let mut c = Circuit::new();
            let a = c.input();
            let b = c.input();
            let or = c.or(a, b);
            // Assert (a | b) plus clauses (!a) and (!b): unsat.
            let mut solver = Solver::new();
            load_into_solver(&c, &[or], &[vec![!a], vec![!b]], mode, &mut solver);
            assert_eq!(solver.solve(), SolveResult::Unsat, "{mode:?}");
        }
    }

    #[test]
    fn constant_assertions() {
        let mut solver = Solver::new();
        let c = Circuit::new();
        load_into_solver(&c, &[Signal::TRUE], &[], CnfMode::Tseitin, &mut solver);
        assert_eq!(solver.solve(), SolveResult::Sat);
        let mut solver2 = Solver::new();
        load_into_solver(&c, &[Signal::FALSE], &[], CnfMode::Tseitin, &mut solver2);
        assert_eq!(solver2.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pg_emits_fewer_clauses() {
        let mut c = Circuit::new();
        let inputs: Vec<Signal> = (0..8).map(|_| c.input()).collect();
        let mut acc = Signal::TRUE;
        for w in inputs.chunks(2) {
            let o = c.or(w[0], w[1]);
            acc = c.and(acc, o);
        }
        let mut s1 = Solver::new();
        load_into_solver(&c, &[acc], &[], CnfMode::Tseitin, &mut s1);
        let mut s2 = Solver::new();
        load_into_solver(&c, &[acc], &[], CnfMode::PlaistedGreenbaum, &mut s2);
        assert!(
            s2.stats().original_clauses < s1.stats().original_clauses,
            "pg={} tseitin={}",
            s2.stats().original_clauses,
            s1.stats().original_clauses
        );
        assert_eq!(s1.solve(), SolveResult::Sat);
        assert_eq!(s2.solve(), SolveResult::Sat);
    }

    #[test]
    fn guarded_assertions_toggle_with_assumptions() {
        for mode in [CnfMode::Tseitin, CnfMode::PlaistedGreenbaum] {
            let mut c = Circuit::new();
            let a = c.input();
            let b = c.input();
            let ab = c.and(a, b);
            let contra = c.and(a, !a);

            let mut solver = Solver::new();
            let mut loader = IncrementalLoader::new(mode);
            let act1 = Lit::new(solver.new_var(), true);
            let act2 = Lit::new(solver.new_var(), true);
            loader.load_guarded(&c, act1, ab, &mut solver);
            loader.load_guarded(&c, act2, contra, &mut solver);

            // Unguarded solve: both assertions inactive, trivially sat.
            assert_eq!(solver.solve(), sufsat_sat::SolveResult::Sat);
            // Only the consistent assertion: sat, and the model satisfies it.
            assert_eq!(
                solver.solve_with_assumptions(&[act1]),
                sufsat_sat::SolveResult::Sat
            );
            let map = loader.map();
            assert!(map.input_value(&solver, 0) && map.input_value(&solver, 1));
            // The contradiction makes it unsat, with act2 in the core.
            assert_eq!(
                solver.solve_with_assumptions(&[act1, act2]),
                sufsat_sat::SolveResult::Unsat
            );
            assert!(solver.failed_assumptions().contains(&act2), "{mode:?}");
            // Retiring act2 restores satisfiability under act1.
            solver.add_clause([!act2]);
            assert!(solver.simplify());
            assert_eq!(
                solver.solve_with_assumptions(&[act1]),
                sufsat_sat::SolveResult::Sat
            );
        }
    }

    #[test]
    fn incremental_loader_reuses_gate_definitions() {
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        let ab = c.and(a, b);

        let mut solver = Solver::new();
        let mut loader = IncrementalLoader::new(CnfMode::Tseitin);
        loader.load(&c, &[ab], &[], &mut solver);
        let clauses_once = solver.stats().original_clauses;
        // Growing the circuit and loading a cone that shares `ab` emits
        // only the new gates' definitions, not `ab`'s again.
        let x = c.input();
        let out = c.and(ab, x);
        loader.load(&c, &[out], &[], &mut solver);
        let clauses_twice = solver.stats().original_clauses;
        assert!(
            clauses_twice - clauses_once <= 4,
            "re-emitted shared cone: {clauses_once} -> {clauses_twice}"
        );
        assert_eq!(solver.solve(), sufsat_sat::SolveResult::Sat);
        assert!(loader.map().input_value(&solver, 2));
    }

    #[test]
    fn exhaustive_equivalence_small_circuits() {
        // For all assignments: circuit-sat iff cnf-sat, via enumeration with
        // unit clauses pinning the inputs.
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        let d = c.input();
        let m = c.mux(a, b, d);
        let x = c.xor(m, b);
        let out = c.or(x, d);
        for mode in [CnfMode::Tseitin, CnfMode::PlaistedGreenbaum] {
            for bits in 0..8u32 {
                let ins = [bits & 1 == 1, bits & 2 == 2, bits & 4 == 4];
                let expect = c.eval(out, &ins);
                let mut solver = Solver::new();
                let map = load_into_solver(&c, &[out], &[], mode, &mut solver);
                // Pin inputs that got SAT variables; unpinned inputs are
                // irrelevant to the output value.
                for (i, &v) in ins.iter().enumerate() {
                    if let Some(var) = map.input_var(i) {
                        solver.add_clause([sufsat_sat::Lit::new(var, v)]);
                    }
                }
                let got = solver.solve() == SolveResult::Sat;
                assert_eq!(got, expect, "mode {mode:?}, bits {bits:03b}");
            }
        }
    }
}
