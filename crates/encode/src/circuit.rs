//! A hash-consed Boolean circuit (AND-inverter graph) shared by both eager
//! encoders.
//!
//! Both the small-domain bit-vector encoder and the per-constraint encoder
//! lower the separation formula into this circuit; CNF conversion
//! (Tseitin or Plaisted–Greenbaum, see [`crate::cnf`]) then feeds the SAT
//! solver. Structural hashing keeps shared subformulas shared, mirroring
//! the DAG representation the paper measures formula sizes on.

use std::collections::HashMap;

/// A signal: a gate output, possibly inverted. The two constants are
/// `Signal::TRUE` and `Signal::FALSE`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Signal(u32);

impl Signal {
    /// The constant-true signal.
    pub const TRUE: Signal = Signal(0);
    /// The constant-false signal.
    pub const FALSE: Signal = Signal(1);

    fn new(gate: u32, inverted: bool) -> Signal {
        Signal(gate << 1 | u32::from(inverted))
    }

    /// The gate index this signal reads.
    pub fn gate(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Whether the signal inverts its gate's output.
    pub fn is_inverted(self) -> bool {
        self.0 & 1 == 1
    }

    /// Whether this is one of the two constant signals.
    pub fn is_const(self) -> bool {
        self.gate() == 0
    }
}

impl std::ops::Not for Signal {
    type Output = Signal;

    fn not(self) -> Signal {
        Signal(self.0 ^ 1)
    }
}

/// One gate of the circuit.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GateNode {
    /// Gate 0: the constant true.
    ConstTrue,
    /// A primary input, identified by a dense input index.
    Input(u32),
    /// Two-input AND of signals.
    And(Signal, Signal),
}

/// A mutable AND-inverter circuit with structural hashing.
///
/// # Examples
///
/// ```
/// use sufsat_encode::{Circuit, Signal};
///
/// let mut c = Circuit::new();
/// let a = c.input();
/// let b = c.input();
/// let ab = c.and(a, b);
/// assert_eq!(c.and(a, b), ab, "structural hashing shares gates");
/// assert_eq!(c.and(a, !a), Signal::FALSE);
/// assert_eq!(c.or(a, Signal::TRUE), Signal::TRUE);
/// ```
#[derive(Debug, Clone)]
pub struct Circuit {
    gates: Vec<GateNode>,
    and_intern: HashMap<(Signal, Signal), Signal>,
    num_inputs: u32,
}

impl Default for Circuit {
    /// Same as [`Circuit::new`]: gate 0 must always be the constant gate,
    /// since `Signal::TRUE`/`Signal::FALSE` address it by index.
    fn default() -> Circuit {
        Circuit::new()
    }
}

impl Circuit {
    /// Creates a circuit containing only the constant gate.
    pub fn new() -> Circuit {
        Circuit {
            gates: vec![GateNode::ConstTrue],
            and_intern: HashMap::new(),
            num_inputs: 0,
        }
    }

    /// Number of gates (including the constant gate).
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs as usize
    }

    /// The gate node at `index`.
    pub fn gate(&self, index: usize) -> &GateNode {
        &self.gates[index]
    }

    /// The primary-input index a signal reads, if it is a non-inverted
    /// input signal.
    pub fn input_index(&self, s: Signal) -> Option<u32> {
        if s.is_inverted() {
            return None;
        }
        match self.gates[s.gate()] {
            GateNode::Input(i) => Some(i),
            _ => None,
        }
    }

    /// Creates a fresh primary input.
    pub fn input(&mut self) -> Signal {
        let idx = self.num_inputs;
        self.num_inputs += 1;
        let gate = self.gates.len() as u32;
        self.gates.push(GateNode::Input(idx));
        Signal::new(gate, false)
    }

    /// AND with constant folding, idempotence/complement rules and
    /// structural hashing (commutative arguments are canonicalized).
    pub fn and(&mut self, a: Signal, b: Signal) -> Signal {
        if a == Signal::FALSE || b == Signal::FALSE || a == !b {
            return Signal::FALSE;
        }
        if a == Signal::TRUE {
            return b;
        }
        if b == Signal::TRUE || a == b {
            return a;
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&s) = self.and_intern.get(&(a, b)) {
            return s;
        }
        let gate = self.gates.len() as u32;
        self.gates.push(GateNode::And(a, b));
        let s = Signal::new(gate, false);
        self.and_intern.insert((a, b), s);
        s
    }

    /// OR via De Morgan.
    pub fn or(&mut self, a: Signal, b: Signal) -> Signal {
        let n = self.and(!a, !b);
        !n
    }

    /// XOR built from two ANDs.
    pub fn xor(&mut self, a: Signal, b: Signal) -> Signal {
        let l = self.and(a, !b);
        let r = self.and(!a, b);
        self.or(l, r)
    }

    /// XNOR (equivalence).
    pub fn xnor(&mut self, a: Signal, b: Signal) -> Signal {
        let x = self.xor(a, b);
        !x
    }

    /// Multiplexer: `if c { t } else { e }`.
    pub fn mux(&mut self, c: Signal, t: Signal, e: Signal) -> Signal {
        if t == e {
            return t;
        }
        let l = self.and(c, t);
        let r = self.and(!c, e);
        self.or(l, r)
    }

    /// Implication `a → b`.
    pub fn implies(&mut self, a: Signal, b: Signal) -> Signal {
        let n = self.and(a, !b);
        !n
    }

    /// N-ary AND, folded as a balanced tree.
    pub fn and_many(&mut self, xs: &[Signal]) -> Signal {
        match xs.len() {
            0 => Signal::TRUE,
            1 => xs[0],
            n => {
                let (l, r) = xs.split_at(n / 2);
                let lt = self.and_many(l);
                let rt = self.and_many(r);
                self.and(lt, rt)
            }
        }
    }

    /// N-ary OR, folded as a balanced tree.
    pub fn or_many(&mut self, xs: &[Signal]) -> Signal {
        match xs.len() {
            0 => Signal::FALSE,
            1 => xs[0],
            n => {
                let (l, r) = xs.split_at(n / 2);
                let lt = self.or_many(l);
                let rt = self.or_many(r);
                self.or(lt, rt)
            }
        }
    }

    // ---- bit-vector helpers (for the SD encoder) ------------------------

    /// Constant bit-vector of `width` bits, little-endian.
    pub fn const_bits(&self, value: u64, width: usize) -> Vec<Signal> {
        (0..width)
            .map(|i| {
                if value >> i & 1 == 1 {
                    Signal::TRUE
                } else {
                    Signal::FALSE
                }
            })
            .collect()
    }

    /// Fresh input bit-vector, zero-extended to `width` from `var_bits`
    /// genuine inputs.
    pub fn input_bits(&mut self, var_bits: usize, width: usize) -> Vec<Signal> {
        let mut out: Vec<Signal> = (0..var_bits).map(|_| self.input()).collect();
        out.resize(width, Signal::FALSE);
        out
    }

    /// Adds the two's-complement constant `k` to a little-endian bit-vector,
    /// wrapping at its width. Callers guarantee no semantic under/overflow.
    pub fn add_const(&mut self, bits: &[Signal], k: i64) -> Vec<Signal> {
        let width = bits.len();
        let kbits = self.const_bits(k as u64 & mask(width), width);
        self.add(bits, &kbits)
    }

    /// Ripple-carry addition of equal-width little-endian vectors (wraps).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn add(&mut self, a: &[Signal], b: &[Signal]) -> Vec<Signal> {
        assert_eq!(a.len(), b.len(), "bit-vector width mismatch");
        let mut out = Vec::with_capacity(a.len());
        let mut carry = Signal::FALSE;
        for (&x, &y) in a.iter().zip(b) {
            let xy = self.xor(x, y);
            let sum = self.xor(xy, carry);
            let c1 = self.and(x, y);
            let c2 = self.and(xy, carry);
            carry = self.or(c1, c2);
            out.push(sum);
        }
        out
    }

    /// Bitwise equality of equal-width vectors.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn eq_bits(&mut self, a: &[Signal], b: &[Signal]) -> Signal {
        assert_eq!(a.len(), b.len(), "bit-vector width mismatch");
        let eqs: Vec<Signal> = a.iter().zip(b).map(|(&x, &y)| self.xnor(x, y)).collect();
        self.and_many(&eqs)
    }

    /// Unsigned `a < b` over equal-width little-endian vectors.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn lt_bits(&mut self, a: &[Signal], b: &[Signal]) -> Signal {
        assert_eq!(a.len(), b.len(), "bit-vector width mismatch");
        // From LSB to MSB: lt = (!a & b) | (a==b & lt_below).
        let mut lt = Signal::FALSE;
        for (&x, &y) in a.iter().zip(b) {
            let strict = self.and(!x, y);
            let same = self.xnor(x, y);
            let keep = self.and(same, lt);
            lt = self.or(strict, keep);
        }
        lt
    }

    /// Per-bit multiplexer over equal-width vectors.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn mux_bits(&mut self, c: Signal, t: &[Signal], e: &[Signal]) -> Vec<Signal> {
        assert_eq!(t.len(), e.len(), "bit-vector width mismatch");
        t.iter().zip(e).map(|(&x, &y)| self.mux(c, x, y)).collect()
    }

    /// Evaluates `s` under concrete input values (indexed by input number).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is shorter than the number of inputs used.
    pub fn eval(&self, s: Signal, inputs: &[bool]) -> bool {
        let mut values = vec![None::<bool>; self.gates.len()];
        values[0] = Some(true);
        // Iterative topological evaluation.
        let mut stack = vec![s.gate()];
        while let Some(&g) = stack.last() {
            if values[g].is_some() {
                stack.pop();
                continue;
            }
            match &self.gates[g] {
                GateNode::ConstTrue => {
                    values[g] = Some(true);
                    stack.pop();
                }
                GateNode::Input(i) => {
                    values[g] = Some(inputs[*i as usize]);
                    stack.pop();
                }
                GateNode::And(a, b) => {
                    let (ga, gb) = (a.gate(), b.gate());
                    match (values[ga], values[gb]) {
                        (Some(va), Some(vb)) => {
                            let va = va ^ a.is_inverted();
                            let vb = vb ^ b.is_inverted();
                            values[g] = Some(va && vb);
                            stack.pop();
                        }
                        _ => {
                            if values[ga].is_none() {
                                stack.push(ga);
                            }
                            if values[gb].is_none() {
                                stack.push(gb);
                            }
                        }
                    }
                }
            }
        }
        values[s.gate()].expect("evaluated") ^ s.is_inverted()
    }

    /// Evaluates a bit-vector to an integer under concrete inputs.
    pub fn eval_bits(&self, bits: &[Signal], inputs: &[bool]) -> u64 {
        bits.iter().enumerate().fold(0u64, |acc, (i, &b)| {
            acc | (u64::from(self.eval(b, inputs)) << i)
        })
    }
}

fn mask(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_reserves_the_constant_gate() {
        // A derived Default once left `gates` empty, so the first input
        // landed on gate 0 and aliased Signal::TRUE — every clause built
        // from it silently vanished at CNF load.
        let mut c = Circuit::default();
        assert_eq!(c.num_gates(), 1);
        let a = c.input();
        assert!(!a.is_const());
        assert_ne!(a, Signal::TRUE);
    }

    #[test]
    fn constant_folding_rules() {
        let mut c = Circuit::new();
        let a = c.input();
        assert_eq!(c.and(a, Signal::TRUE), a);
        assert_eq!(c.and(a, Signal::FALSE), Signal::FALSE);
        assert_eq!(c.and(a, a), a);
        assert_eq!(c.and(a, !a), Signal::FALSE);
        assert_eq!(c.or(a, !a), Signal::TRUE);
        assert_eq!(c.mux(a, Signal::TRUE, Signal::FALSE), a);
    }

    #[test]
    fn gate_sharing() {
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        let g1 = c.and(a, b);
        let g2 = c.and(b, a);
        assert_eq!(g1, g2);
        let n = c.num_gates();
        let _ = c.and(a, b);
        assert_eq!(c.num_gates(), n);
    }

    #[test]
    fn eval_matches_semantics() {
        let mut c = Circuit::new();
        let a = c.input();
        let b = c.input();
        let x = c.xor(a, b);
        let m = c.mux(a, b, !b);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let ins = [va, vb];
            assert_eq!(c.eval(x, &ins), va ^ vb);
            assert_eq!(c.eval(m, &ins), if va { vb } else { !vb });
        }
    }

    #[test]
    fn adder_adds() {
        let mut c = Circuit::new();
        let a = c.input_bits(4, 6);
        let val = |c: &Circuit, bits: &[Signal], x: u64| {
            let ins: Vec<bool> = (0..4).map(|i| x >> i & 1 == 1).collect();
            c.eval_bits(bits, &ins)
        };
        let plus5 = c.add_const(&a, 5);
        for x in 0..16u64 {
            assert_eq!(val(&c, &plus5, x), x + 5);
        }
        let minus3 = c.add_const(&a, -3);
        for x in 3..16u64 {
            assert_eq!(val(&c, &minus3, x), x - 3);
        }
    }

    #[test]
    fn comparators_compare() {
        let mut c = Circuit::new();
        let a = c.input_bits(3, 3);
        let b = c.input_bits(3, 3);
        let eq = c.eq_bits(&a, &b);
        let lt = c.lt_bits(&a, &b);
        for x in 0..8u64 {
            for y in 0..8u64 {
                let ins: Vec<bool> = (0..3)
                    .map(|i| x >> i & 1 == 1)
                    .chain((0..3).map(|i| y >> i & 1 == 1))
                    .collect();
                assert_eq!(c.eval(eq, &ins), x == y, "{x} == {y}");
                assert_eq!(c.eval(lt, &ins), x < y, "{x} < {y}");
            }
        }
    }

    #[test]
    fn mux_bits_select() {
        let mut c = Circuit::new();
        let sel = c.input();
        let t = c.const_bits(5, 4);
        let e = c.const_bits(9, 4);
        let m = c.mux_bits(sel, &t, &e);
        assert_eq!(c.eval_bits(&m, &[true]), 5);
        assert_eq!(c.eval_bits(&m, &[false]), 9);
    }
}
