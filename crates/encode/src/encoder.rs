//! The unified eager encoder: small-domain (SD), per-constraint (EIJ), and
//! the paper's class-wise HYBRID combination (paper §2.1.2 and §4 step 5).
//!
//! Every atom of the separation formula belongs to exactly one equivalence
//! class of `V_g` constants; the class's method decides how the atom is
//! lowered:
//!
//! * **SD** — symbolic constants become bit-vectors sized by the class's
//!   small-model range; `succ`/`pred` become ripple-carry constant adds,
//!   integer ITEs become muxes, atoms become comparators. `V_p` constants
//!   get fixed, well-spaced values above the class's value band (the
//!   maximal-diversity interpretation).
//! * **EIJ** — integer ITEs are eliminated by path enumeration and each
//!   separation predicate becomes one Boolean variable, with transitivity
//!   constraints generated per class (see [`crate::trans`]).

use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;

use sufsat_sat::CancelToken;
use sufsat_seplog::{AtomOp, GroundTerm, SepAnalysis};
use sufsat_suf::{BoolSym, Term, TermId, TermManager, VarSym};

use crate::circuit::{Circuit, Signal};
use crate::cnf::CnfMode;
use crate::trans::{
    generate_equality_transitivity, generate_transitivity, BoundTable, EqTable, TransBudgetExceeded,
};

/// Which eager encoding drives each class.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum EncodingMode {
    /// Small-domain (finite instantiation) for every class.
    Sd,
    /// Per-constraint for every class.
    Eij,
    /// The paper's hybrid: EIJ unless `SepCnt(Vᵢ) > threshold`, then SD.
    Hybrid(usize),
    /// The earlier fixed rule the paper compares against: EIJ only for
    /// classes whose predicates are pure equalities without arithmetic.
    FixedHybrid,
}

/// The method chosen for one class.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum ClassMethod {
    /// Small-domain bit-vector encoding.
    Sd,
    /// Per-constraint predicate-variable encoding.
    Eij,
}

/// Options controlling the encoder.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodeOptions {
    /// Per-class method selection.
    pub mode: EncodingMode,
    /// CNF conversion style used downstream.
    pub cnf: CnfMode,
    /// Budget on generated transitivity constraints; exceeding it aborts
    /// the translation (the paper's EIJ translation-stage timeout).
    pub trans_budget: usize,
    /// Optional wall-clock deadline for transitivity generation.
    pub deadline: Option<Instant>,
    /// Optional cooperative cancellation token polled during transitivity
    /// generation, so a cancelled portfolio lane can abandon a blowing-up
    /// EIJ translation, not just a running SAT search.
    pub cancel: Option<CancelToken>,
}

impl Default for EncodeOptions {
    fn default() -> EncodeOptions {
        EncodeOptions {
            mode: EncodingMode::Hybrid(700),
            cnf: CnfMode::default(),
            trans_budget: 2_000_000,
            deadline: None,
            cancel: None,
        }
    }
}

/// Statistics of one encoding run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct EncodeStats {
    /// Classes encoded with SD.
    pub sd_classes: usize,
    /// Classes encoded with EIJ.
    pub eij_classes: usize,
    /// Transitivity clauses generated.
    pub trans_clauses: usize,
    /// Canonical predicate variables allocated (original + derived).
    pub pred_vars: usize,
    /// Circuit gates built.
    pub gates: usize,
}

/// Decoding metadata mapping circuit inputs back to symbolic constants.
#[derive(Debug, Clone, Default)]
pub struct DecodeInfo {
    /// Little-endian genuine bit inputs per SD-encoded `V_g` constant.
    pub sd_bits: HashMap<VarSym, Vec<u32>>,
    /// Canonical EIJ bounds: `(x, y, c, input)` meaning input true ⇔
    /// `x − y ≤ c`.
    pub eij_bounds: Vec<(VarSym, VarSym, i64, u32)>,
    /// Canonical EIJ equalities (equality-only classes): `(x, y, c, input)`
    /// meaning input true ⇔ `x = y + c`.
    pub eij_eqs: Vec<(VarSym, VarSym, i64, u32)>,
    /// Input index of each Boolean symbolic constant.
    pub bool_inputs: HashMap<BoolSym, u32>,
    /// `V_p` constants, in symbol order.
    pub p_vars: Vec<VarSym>,
    /// Class members (for grouping EIJ bounds at decode time).
    pub class_vars: Vec<Vec<VarSym>>,
    /// Method per class.
    pub class_methods: Vec<ClassMethod>,
    /// Largest absolute leaf offset (for diverse `V_p` spacing).
    pub max_abs_offset: i64,
}

/// The result of encoding a separation formula.
#[derive(Debug, Clone)]
pub struct Encoded {
    /// The circuit both encoders share.
    pub circuit: Circuit,
    /// Signal computing the formula (`F_bvar` in the paper).
    pub formula: Signal,
    /// Transitivity clauses over circuit signals (`F_trans`).
    pub trans_clauses: Vec<Vec<Signal>>,
    /// Decoding metadata.
    pub decode: DecodeInfo,
    /// Statistics.
    pub stats: EncodeStats,
}

/// Encodes an application-free separation formula.
///
/// # Errors
///
/// Returns [`TransBudgetExceeded`] when EIJ transitivity generation blows
/// past `options.trans_budget`.
///
/// # Panics
///
/// Panics if the formula contains uninterpreted applications, or if a `V_p`
/// constant occurs under an inequality (which the positive-equality
/// classification rules out).
pub fn encode(
    tm: &TermManager,
    root: TermId,
    analysis: &SepAnalysis,
    options: &EncodeOptions,
) -> Result<Encoded, TransBudgetExceeded> {
    let obs_span = sufsat_obs::span_with!(
        "encode",
        mode = match options.mode {
            EncodingMode::Sd => "sd",
            EncodingMode::Eij => "eij",
            EncodingMode::Hybrid(_) => "hybrid",
            EncodingMode::FixedHybrid => "fixed-hybrid",
        },
        classes = analysis.classes.len(),
    );
    let methods: Vec<ClassMethod> = analysis
        .classes
        .iter()
        .map(|class| match options.mode {
            EncodingMode::Sd => ClassMethod::Sd,
            EncodingMode::Eij => ClassMethod::Eij,
            EncodingMode::Hybrid(threshold) => {
                if class.sep_cnt > threshold {
                    ClassMethod::Sd
                } else {
                    ClassMethod::Eij
                }
            }
            EncodingMode::FixedHybrid => {
                let pure_eq = class
                    .predicates
                    .iter()
                    .all(|p| matches!(p, sufsat_seplog::PredKey::Eq(_, _, 0)));
                if pure_eq {
                    ClassMethod::Eij
                } else {
                    ClassMethod::Sd
                }
            }
        })
        .collect();

    let (min_off, max_off) = analysis.ground.offset_bounds();
    let shift = (-min_off).max(0) as u64;
    let band = (max_off - min_off + 1) as u64;
    let mut p_sorted: Vec<VarSym> = analysis.p_vars.iter().copied().collect();
    p_sorted.sort_unstable();
    let p_index: HashMap<VarSym, usize> =
        p_sorted.iter().enumerate().map(|(i, &v)| (v, i)).collect();

    // Per-class SD parameters.
    let class_params: Vec<SdParams> = analysis
        .classes
        .iter()
        .map(|class| {
            let var_bits = bits_for(class.range.max(1));
            let g_max = (1u64 << var_bits) - 1 + shift + max_off.max(0) as u64;
            let p_base = g_max + 1;
            let max_value = p_base + (p_sorted.len() as u64 + 1) * band + shift + band;
            SdParams {
                var_bits,
                width: bits_for(max_value + 1),
                p_base,
                p_stride: band,
            }
        })
        .collect();

    if obs_span.is_recording() {
        // One record per class: the method decision (for HYBRID, the
        // threshold it was judged against) and the SD bit-widths that size
        // the small-model domain.
        let threshold = match options.mode {
            EncodingMode::Hybrid(t) => t as i64,
            _ => -1,
        };
        for (i, ((class, method), params)) in analysis
            .classes
            .iter()
            .zip(&methods)
            .zip(&class_params)
            .enumerate()
        {
            sufsat_obs::event!(
                "encode.class",
                class = i,
                method = match method {
                    ClassMethod::Sd => "sd",
                    ClassMethod::Eij => "eij",
                },
                sep_cnt = class.sep_cnt,
                threshold = threshold,
                vars = class.vars.len(),
                range = class.range,
                var_bits = params.var_bits,
                width = params.width,
            );
        }
    }

    let eq_only: Vec<bool> = analysis
        .classes
        .iter()
        .map(|c| {
            c.predicates
                .iter()
                .all(|p| matches!(p, sufsat_seplog::PredKey::Eq(..)))
        })
        .collect();

    let mut ctx = Ctx {
        tm,
        analysis,
        methods: &methods,
        class_params: &class_params,
        shift,
        p_index: &p_index,
        circuit: Circuit::new(),
        table: BoundTable::new(),
        eq_table: EqTable::new(),
        eq_only: eq_only.clone(),
        bool_sig: HashMap::new(),
        bool_inputs: HashMap::new(),
        sd_var_bits: HashMap::new(),
        sd_term_bits: HashMap::new(),
        paths: HashMap::new(),
        sd_bit_inputs: HashMap::new(),
    };

    // Single bottom-up pass: Boolean nodes (including the conditions of
    // integer ITEs) appear before the atoms that contain them.
    for id in tm.postorder(root) {
        if tm.sort(id) != sufsat_suf::Sort::Bool {
            continue;
        }
        let sig = match tm.term(id) {
            Term::True => Signal::TRUE,
            Term::False => Signal::FALSE,
            Term::Not(a) => !ctx.bool_sig[a],
            Term::And(a, b) => {
                let (x, y) = (ctx.bool_sig[a], ctx.bool_sig[b]);
                ctx.circuit.and(x, y)
            }
            Term::Or(a, b) => {
                let (x, y) = (ctx.bool_sig[a], ctx.bool_sig[b]);
                ctx.circuit.or(x, y)
            }
            Term::Implies(a, b) => {
                let (x, y) = (ctx.bool_sig[a], ctx.bool_sig[b]);
                ctx.circuit.implies(x, y)
            }
            Term::Iff(a, b) => {
                let (x, y) = (ctx.bool_sig[a], ctx.bool_sig[b]);
                ctx.circuit.xnor(x, y)
            }
            Term::IteBool(c, t, e) => {
                let (sc, st, se) = (ctx.bool_sig[c], ctx.bool_sig[t], ctx.bool_sig[e]);
                ctx.circuit.mux(sc, st, se)
            }
            Term::BoolVar(b) => ctx.bool_var(*b),
            Term::Eq(a, b) => ctx.atom(AtomOp::Eq, *a, *b),
            Term::Lt(a, b) => ctx.atom(AtomOp::Lt, *a, *b),
            Term::PApp(..) => panic!("encode requires an application-free formula"),
            _ => unreachable!("integer node filtered above"),
        };
        ctx.bool_sig.insert(id, sig);
    }
    let formula = ctx.bool_sig[&root];

    // Transitivity constraints per EIJ class.
    let mut trans_clauses: Vec<Vec<Signal>> = Vec::new();
    for (i, ((class, method), eq)) in analysis
        .classes
        .iter()
        .zip(&methods)
        .zip(&eq_only)
        .enumerate()
    {
        if *method == ClassMethod::Eij {
            let budget = options.trans_budget.saturating_sub(trans_clauses.len());
            let result = if *eq {
                generate_equality_transitivity(
                    &mut ctx.circuit,
                    &mut ctx.eq_table,
                    &class.vars,
                    budget,
                    options.deadline,
                    options.cancel.as_ref(),
                )
            } else {
                generate_transitivity(
                    &mut ctx.circuit,
                    &mut ctx.table,
                    &class.vars,
                    budget,
                    options.deadline,
                    options.cancel.as_ref(),
                )
            };
            let clauses = match result {
                Ok(clauses) => clauses,
                Err(err) => {
                    sufsat_obs::event!(
                        "encode.abort",
                        class = i,
                        cancelled = err.cancelled,
                        timed_out = err.timed_out,
                        generated = trans_clauses.len(),
                    );
                    return Err(err);
                }
            };
            if obs_span.is_recording() {
                sufsat_obs::event!(
                    "encode.trans",
                    class = i,
                    clauses = clauses.len(),
                    equality_only = *eq,
                );
            }
            trans_clauses.extend(clauses);
        }
    }

    let Ctx {
        circuit,
        table,
        eq_table,
        bool_inputs,
        sd_bit_inputs,
        ..
    } = ctx;

    let stats = EncodeStats {
        sd_classes: methods.iter().filter(|m| **m == ClassMethod::Sd).count(),
        eij_classes: methods.iter().filter(|m| **m == ClassMethod::Eij).count(),
        trans_clauses: trans_clauses.len(),
        pred_vars: table.len() + eq_table.len(),
        gates: circuit.num_gates(),
    };
    if obs_span.is_recording() {
        sufsat_obs::event!(
            "encode.done",
            sd_classes = stats.sd_classes,
            eij_classes = stats.eij_classes,
            trans_clauses = stats.trans_clauses,
            pred_vars = stats.pred_vars,
            gates = stats.gates,
        );
    }

    let decode = DecodeInfo {
        sd_bits: sd_bit_inputs,
        eij_bounds: table
            .iter_original()
            .map(|(x, y, c, s)| {
                let input = circuit
                    .input_index(s)
                    .expect("canonical bounds are plain inputs");
                (x, y, c, input)
            })
            .collect(),
        eij_eqs: eq_table
            .iter_original()
            .map(|(x, y, c, s)| {
                let input = circuit
                    .input_index(s)
                    .expect("canonical equalities are plain inputs");
                (x, y, c, input)
            })
            .collect(),
        bool_inputs: bool_inputs
            .iter()
            .map(|(&b, &s)| {
                let input = circuit
                    .input_index(s)
                    .expect("bool constants are plain inputs");
                (b, input)
            })
            .collect(),
        p_vars: p_sorted,
        class_vars: analysis.classes.iter().map(|c| c.vars.clone()).collect(),
        class_methods: methods,
        max_abs_offset: analysis.max_abs_offset,
    };

    Ok(Encoded {
        circuit,
        formula,
        trans_clauses,
        decode,
        stats,
    })
}

#[derive(Debug, Copy, Clone)]
struct SdParams {
    /// Genuine input bits per constant.
    var_bits: usize,
    /// Full arithmetic width.
    width: usize,
    /// First value of the `V_p` band (pre-shift).
    p_base: u64,
    /// Spacing between consecutive `V_p` values.
    p_stride: u64,
}

struct Ctx<'a> {
    tm: &'a TermManager,
    analysis: &'a SepAnalysis,
    methods: &'a [ClassMethod],
    class_params: &'a [SdParams],
    shift: u64,
    p_index: &'a HashMap<VarSym, usize>,
    circuit: Circuit,
    table: BoundTable,
    eq_table: EqTable,
    /// Per class: every separation predicate is an equality (Bryant–Velev
    /// single-variable representation applies).
    eq_only: Vec<bool>,
    bool_sig: HashMap<TermId, Signal>,
    bool_inputs: HashMap<BoolSym, Signal>,
    /// Genuine (unextended) bits per SD-encoded constant.
    sd_var_bits: HashMap<VarSym, Vec<Signal>>,
    /// Encoded bit-vectors per (term, class) context.
    sd_term_bits: HashMap<(TermId, usize), Vec<Signal>>,
    /// EIJ path enumerations per integer term.
    paths: HashMap<TermId, Rc<Vec<(Signal, GroundTerm)>>>,
    /// Input indices of SD bits for decoding.
    sd_bit_inputs: HashMap<VarSym, Vec<u32>>,
}

impl Ctx<'_> {
    fn bool_var(&mut self, b: BoolSym) -> Signal {
        if let Some(&s) = self.bool_inputs.get(&b) {
            return s;
        }
        let s = self.circuit.input();
        self.bool_inputs.insert(b, s);
        s
    }

    /// The class an atom belongs to: the class of any of its `V_g` leaves.
    fn atom_class(&self, lhs: TermId, rhs: TermId) -> Option<usize> {
        for side in [lhs, rhs] {
            for g in self.analysis.ground.leaves(side) {
                if let Some(c) = self.analysis.class_of(g.var) {
                    return Some(c);
                }
            }
        }
        None
    }

    fn atom(&mut self, op: AtomOp, lhs: TermId, rhs: TermId) -> Signal {
        match self.atom_class(lhs, rhs) {
            // All-V_p atoms are decided structurally via path enumeration.
            None => self.atom_eij(op, lhs, rhs, false),
            Some(cid) => match self.methods[cid] {
                ClassMethod::Sd => self.atom_sd(op, lhs, rhs, cid),
                ClassMethod::Eij => self.atom_eij(op, lhs, rhs, self.eq_only[cid]),
            },
        }
    }

    // ---- SD --------------------------------------------------------------

    fn atom_sd(&mut self, op: AtomOp, lhs: TermId, rhs: TermId, cid: usize) -> Signal {
        let a = self.sd_bits(lhs, cid);
        let b = self.sd_bits(rhs, cid);
        match op {
            AtomOp::Eq => self.circuit.eq_bits(&a, &b),
            AtomOp::Lt => self.circuit.lt_bits(&a, &b),
        }
    }

    fn sd_bits(&mut self, t: TermId, cid: usize) -> Vec<Signal> {
        if let Some(bits) = self.sd_term_bits.get(&(t, cid)) {
            return bits.clone();
        }
        let params = self.class_params[cid];
        let out = match self.tm.term(t).clone() {
            Term::IntVar(v) => {
                if let Some(&pi) = self.p_index.get(&v) {
                    let value = params.p_base + (pi as u64 + 1) * params.p_stride + self.shift;
                    self.circuit.const_bits(value, params.width)
                } else {
                    let genuine = match self.sd_var_bits.get(&v) {
                        Some(bits) => bits.clone(),
                        None => {
                            let bits: Vec<Signal> =
                                (0..params.var_bits).map(|_| self.circuit.input()).collect();
                            let idxs: Vec<u32> = bits
                                .iter()
                                .map(|&s| {
                                    self.circuit
                                        .input_index(s)
                                        .expect("variable bits are inputs")
                                })
                                .collect();
                            self.sd_var_bits.insert(v, bits.clone());
                            self.sd_bit_inputs.insert(v, idxs);
                            bits
                        }
                    };
                    let mut bits = genuine;
                    bits.resize(params.width, Signal::FALSE);
                    self.circuit.add_const(&bits, self.shift as i64)
                }
            }
            Term::Succ(a) => {
                let bits = self.sd_bits(a, cid);
                self.circuit.add_const(&bits, 1)
            }
            Term::Pred(a) => {
                let bits = self.sd_bits(a, cid);
                self.circuit.add_const(&bits, -1)
            }
            Term::IteInt(c, th, el) => {
                let sc = self.bool_sig[&c];
                let tb = self.sd_bits(th, cid);
                let eb = self.sd_bits(el, cid);
                self.circuit.mux_bits(sc, &tb, &eb)
            }
            other => unreachable!("non-integer term in SD context: {other:?}"),
        };
        self.sd_term_bits.insert((t, cid), out.clone());
        out
    }

    // ---- EIJ ---------------------------------------------------------------

    fn atom_eij(&mut self, op: AtomOp, lhs: TermId, rhs: TermId, eq_class: bool) -> Signal {
        let lp = self.eij_paths(lhs);
        let rp = self.eij_paths(rhs);
        let mut disjuncts = Vec::with_capacity(lp.len() * rp.len());
        for &(c1, g1) in lp.iter() {
            for &(c2, g2) in rp.iter() {
                let e = self.pred_signal(op, g1, g2, eq_class);
                if e == Signal::FALSE {
                    continue;
                }
                let cond = self.circuit.and(c1, c2);
                let term = self.circuit.and(cond, e);
                disjuncts.push(term);
            }
        }
        self.circuit.or_many(&disjuncts)
    }

    fn eij_paths(&mut self, t: TermId) -> Rc<Vec<(Signal, GroundTerm)>> {
        if let Some(p) = self.paths.get(&t) {
            return Rc::clone(p);
        }
        let out: Vec<(Signal, GroundTerm)> = match self.tm.term(t).clone() {
            Term::IntVar(v) => vec![(Signal::TRUE, GroundTerm { var: v, offset: 0 })],
            Term::Succ(a) => self
                .eij_paths(a)
                .iter()
                .map(|&(c, g)| {
                    (
                        c,
                        GroundTerm {
                            var: g.var,
                            offset: g.offset + 1,
                        },
                    )
                })
                .collect(),
            Term::Pred(a) => self
                .eij_paths(a)
                .iter()
                .map(|&(c, g)| {
                    (
                        c,
                        GroundTerm {
                            var: g.var,
                            offset: g.offset - 1,
                        },
                    )
                })
                .collect(),
            Term::IteInt(c, th, el) => {
                let sc = self.bool_sig[&c];
                let tp = self.eij_paths(th);
                let ep = self.eij_paths(el);
                let mut merged: HashMap<GroundTerm, Signal> = HashMap::new();
                for &(pc, g) in tp.iter() {
                    let cond = self.circuit.and(sc, pc);
                    merge_path(&mut self.circuit, &mut merged, g, cond);
                }
                for &(pc, g) in ep.iter() {
                    let cond = self.circuit.and(!sc, pc);
                    merge_path(&mut self.circuit, &mut merged, g, cond);
                }
                let mut v: Vec<(Signal, GroundTerm)> =
                    merged.into_iter().map(|(g, c)| (c, g)).collect();
                v.sort_by_key(|&(_, g)| g);
                v
            }
            other => unreachable!("non-integer term in EIJ context: {other:?}"),
        };
        let rc = Rc::new(out);
        self.paths.insert(t, Rc::clone(&rc));
        rc
    }

    /// The predicate signal for `g1 ⋈ g2` (paper §4 step 5): constants for
    /// same-variable pairs, `false` for `V_p`-involving equalities between
    /// distinct constants, fresh predicate variables otherwise.
    fn pred_signal(
        &mut self,
        op: AtomOp,
        g1: GroundTerm,
        g2: GroundTerm,
        eq_class: bool,
    ) -> Signal {
        if g1.var == g2.var {
            let truth = match op {
                AtomOp::Eq => g1.offset == g2.offset,
                AtomOp::Lt => g1.offset < g2.offset,
            };
            return if truth { Signal::TRUE } else { Signal::FALSE };
        }
        let p1 = self.p_index.contains_key(&g1.var);
        let p2 = self.p_index.contains_key(&g2.var);
        if p1 || p2 {
            match op {
                // Maximal diversity: distinct V_p-involving terms differ.
                AtomOp::Eq => return Signal::FALSE,
                AtomOp::Lt => panic!(
                    "V_p constant under an inequality contradicts the \
                     positive-equality classification"
                ),
            }
        }
        match op {
            AtomOp::Eq if eq_class => {
                // Equality-only class: one variable per equality
                // (Bryant–Velev), x = y + (k2 - k1).
                self.eq_table
                    .equality(&mut self.circuit, g1.var, g2.var, g2.offset - g1.offset)
            }
            AtomOp::Eq => {
                // g1 = g2  <=>  (g1 - g2 <= d) & (g2 - g1 <= -d) for
                // d = offset difference.
                let d = g2.offset - g1.offset;
                let le1 = self.table.bound(&mut self.circuit, g1.var, g2.var, d);
                let le2 = self.table.bound(&mut self.circuit, g2.var, g1.var, -d);
                self.circuit.and(le1, le2)
            }
            AtomOp::Lt => {
                // g1 < g2  <=>  g1.var - g2.var <= g2.k - g1.k - 1.
                self.table
                    .bound(&mut self.circuit, g1.var, g2.var, g2.offset - g1.offset - 1)
            }
        }
    }
}

fn merge_path(
    circuit: &mut Circuit,
    merged: &mut HashMap<GroundTerm, Signal>,
    g: GroundTerm,
    cond: Signal,
) {
    match merged.get(&g).copied() {
        Some(prev) => {
            let or = circuit.or(prev, cond);
            merged.insert(g, or);
        }
        None => {
            merged.insert(g, cond);
        }
    }
}

fn bits_for(values: u64) -> usize {
    // Number of bits to represent values in [0, values).
    (64 - (values.saturating_sub(1)).leading_zeros() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_ranges() {
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(16), 4);
        assert_eq!(bits_for(17), 5);
    }
}
