//! Eager Boolean encodings of separation logic: small-domain (SD),
//! per-constraint (EIJ) and the paper's class-wise HYBRID.
//!
//! This crate lowers application-free separation formulas into a shared
//! Boolean [`Circuit`], chooses per equivalence class between the
//! bit-vector small-domain encoding and the predicate-variable
//! per-constraint encoding (with full transitivity-constraint generation),
//! converts the result to CNF (Tseitin or Plaisted–Greenbaum), and decodes
//! SAT models back into integer counterexamples.
//!
//! The decision procedure that drives it lives in `sufsat-core`.
//!
//! # Examples
//!
//! ```
//! use std::collections::HashSet;
//! use sufsat_encode::{encode, EncodeOptions, EncodingMode};
//! use sufsat_seplog::SepAnalysis;
//! use sufsat_suf::TermManager;
//!
//! let mut tm = TermManager::new();
//! let x = tm.int_var("x");
//! let y = tm.int_var("y");
//! let phi = tm.mk_lt(x, y);
//! let analysis = SepAnalysis::new(&tm, phi, &HashSet::new());
//! let opts = EncodeOptions { mode: EncodingMode::Eij, ..EncodeOptions::default() };
//! let encoded = encode(&tm, phi, &analysis, &opts)?;
//! assert_eq!(encoded.stats.pred_vars, 1, "one predicate variable for x < y");
//! # Ok::<(), sufsat_encode::TransBudgetExceeded>(())
//! ```

#![warn(missing_docs)]

mod circuit;
mod cnf;
mod decode;
mod encoder;
mod incremental;
mod trans;

pub use circuit::{Circuit, GateNode, Signal};
pub use cnf::{load_into_solver, CnfMode, IncrementalLoader, SignalMap};
pub use decode::{decode_model, try_decode_model, try_decode_model_parts, DecodeFailure};
pub use incremental::{
    Delta, DeltaStats, IncrementalEncoder, ReencodeReason, VAR_BITS_HEADROOM,
};
pub use encoder::{
    encode, ClassMethod, DecodeInfo, EncodeOptions, EncodeStats, Encoded, EncodingMode,
};
pub use trans::{
    generate_equality_transitivity, generate_equality_transitivity_ordered, generate_transitivity,
    generate_transitivity_ordered, BoundTable, ElimOrder, EqTable, TransBudgetExceeded,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use sufsat_sat::{SolveResult, Solver};
    use sufsat_seplog::{brute_force_validity, OracleResult, SepAnalysis};
    use sufsat_suf::{TermId, TermManager, VarSym};

    /// Full eager pipeline for tests: encode, load, solve ¬formula.
    fn decide(
        tm: &TermManager,
        phi: TermId,
        p_vars: &HashSet<VarSym>,
        mode: EncodingMode,
        cnf: CnfMode,
    ) -> (bool, Option<sufsat_seplog::SepAssignment>) {
        let analysis = SepAnalysis::new(tm, phi, p_vars);
        let opts = EncodeOptions {
            mode,
            cnf,
            ..EncodeOptions::default()
        };
        let encoded = encode(tm, phi, &analysis, &opts).expect("within budget");
        let mut solver = Solver::new();
        let map = load_into_solver(
            &encoded.circuit,
            &[!encoded.formula],
            &encoded.trans_clauses,
            cnf,
            &mut solver,
        );
        match solver.solve() {
            SolveResult::Unsat => (true, None),
            SolveResult::Sat => {
                let cex = decode_model(&encoded, &map, &solver);
                (false, Some(cex))
            }
            SolveResult::Unknown(_) => panic!("no budget was set"),
        }
    }

    fn all_modes() -> Vec<EncodingMode> {
        vec![
            EncodingMode::Sd,
            EncodingMode::Eij,
            EncodingMode::Hybrid(0),
            EncodingMode::Hybrid(1),
            EncodingMode::Hybrid(700),
            EncodingMode::FixedHybrid,
        ]
    }

    #[test]
    fn paper_example_is_valid_under_all_modes() {
        // ¬(x >= y ∧ y >= z ∧ z >= succ(x)) is valid.
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let z = tm.int_var("z");
        let c1 = tm.mk_ge(x, y);
        let c2 = tm.mk_ge(y, z);
        let sx = tm.mk_succ(x);
        let c3 = tm.mk_ge(z, sx);
        let conj = tm.mk_and_many(&[c1, c2, c3]);
        let phi = tm.mk_not(conj);
        for mode in all_modes() {
            for cnf in [CnfMode::Tseitin, CnfMode::PlaistedGreenbaum] {
                let (valid, _) = decide(&tm, phi, &HashSet::new(), mode, cnf);
                assert!(valid, "{mode:?} {cnf:?}");
            }
        }
    }

    #[test]
    fn invalid_formulas_yield_true_counterexamples() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let z = tm.int_var("z");
        let xy = tm.mk_lt(x, y);
        let yz = tm.mk_le(y, z);
        let phi = tm.mk_implies(xy, yz); // not valid
        for mode in all_modes() {
            let (valid, cex) = decide(&tm, phi, &HashSet::new(), mode, CnfMode::Tseitin);
            assert!(!valid, "{mode:?}");
            let cex = cex.expect("counterexample");
            assert!(!cex.evaluate(&tm, phi), "{mode:?}: cex must falsify");
        }
    }

    #[test]
    fn ite_formulas_agree_across_modes() {
        // max(x, y) >= x is valid.
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let c = tm.mk_lt(x, y);
        let max = tm.mk_ite_int(c, y, x);
        let phi = tm.mk_ge(max, x);
        for mode in all_modes() {
            let (valid, _) = decide(&tm, phi, &HashSet::new(), mode, CnfMode::Tseitin);
            assert!(valid, "{mode:?}");
        }
    }

    #[test]
    fn p_var_diversity_is_respected() {
        // With x, y in V_p, the positive equality x = y is falsifiable
        // (diverse values), so the formula x = y is invalid.
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let phi = tm.mk_eq(x, y);
        let mut p_vars = HashSet::new();
        p_vars.insert(tm.find_int_var("x").unwrap());
        p_vars.insert(tm.find_int_var("y").unwrap());
        for mode in all_modes() {
            let (valid, cex) = decide(&tm, phi, &p_vars, mode, CnfMode::Tseitin);
            assert!(!valid, "{mode:?}");
            let cex = cex.expect("counterexample");
            assert!(!cex.evaluate(&tm, phi), "{mode:?}");
        }
    }

    #[test]
    fn mixed_p_g_equalities_encode_false() {
        // p-var vs g-var positive equality is falsifiable; the implication
        // (x < y) => (x = p) must be invalid.
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let p = tm.int_var("p");
        let mut p_vars = HashSet::new();
        p_vars.insert(tm.find_int_var("p").unwrap());
        let hyp = tm.mk_lt(x, y);
        let conc = tm.mk_eq(x, p);
        let phi = tm.mk_implies(hyp, conc);
        for mode in all_modes() {
            let (valid, cex) = decide(&tm, phi, &p_vars, mode, CnfMode::Tseitin);
            assert!(!valid, "{mode:?}");
            assert!(!cex.unwrap().evaluate(&tm, phi), "{mode:?}");
        }
    }

    #[test]
    fn agreement_with_oracle_on_fixed_suite() {
        // A battery of formulas with known status, every mode and cnf.
        let cases: Vec<(&str, &str)> = vec![
            ("(vars a b c)", "(=> (and (< a b) (< b c)) (< a c))"),
            ("(vars a b)", "(or (< a b) (or (= a b) (< b a)))"),
            ("(vars a b)", "(=> (< a b) (< a (succ b)))"),
            ("(vars a b)", "(=> (< a (succ b)) (< a b))"),
            (
                "(vars a b c)",
                "(=> (= a b) (= (ite (< a c) a b) (ite (< b c) b a)))",
            ),
            ("(vars a)", "(< a (succ (succ a)))"),
            ("(vars a)", "(< (succ a) a)"),
            ("(vars a b) (bvars q)", "(=> q (= (ite q a b) a))"),
            ("(vars a b c d)", "(=> (and (<= a b) (<= c d)) (<= a d))"),
        ];
        for (decls, f) in cases {
            let mut tm = TermManager::new();
            let phi = sufsat_suf::parse_problem(&mut tm, &format!("{decls} (formula {f})"))
                .expect("parses");
            let analysis = SepAnalysis::new(&tm, phi, &HashSet::new());
            let expected = match brute_force_validity(&tm, phi, &analysis, 1, 2_000_000) {
                OracleResult::Valid => true,
                OracleResult::Invalid(_) => false,
                OracleResult::TooLarge => panic!("oracle budget too small for {f}"),
            };
            for mode in all_modes() {
                for cnf in [CnfMode::Tseitin, CnfMode::PlaistedGreenbaum] {
                    let (valid, cex) = decide(&tm, phi, &HashSet::new(), mode, cnf);
                    assert_eq!(valid, expected, "{f} under {mode:?} {cnf:?}");
                    if let Some(cex) = cex {
                        assert!(!cex.evaluate(&tm, phi), "{f} {mode:?}");
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use std::collections::HashSet;
    use sufsat_prng::Prng;
    use sufsat_sat::{SolveResult, Solver};
    use sufsat_seplog::{brute_force_validity, OracleResult, SepAnalysis};
    use sufsat_suf::{TermId, TermManager};

    /// Random separation formulas (same recipe scheme as sufsat-seplog).
    fn build_random_sep(tm: &mut TermManager, recipe: &[(u8, u8, u8)], n_vars: usize) -> TermId {
        let vars: Vec<TermId> = (0..n_vars).map(|i| tm.int_var(&format!("x{i}"))).collect();
        let mut ints: Vec<TermId> = vars;
        let mut bools: Vec<TermId> = Vec::new();
        for &(op, i, j) in recipe {
            let (i, j) = (i as usize, j as usize);
            match op % 8 {
                0 => {
                    let a = ints[i % ints.len()];
                    let b = ints[j % ints.len()];
                    let t = tm.mk_eq(a, b);
                    bools.push(t);
                }
                1 => {
                    let a = ints[i % ints.len()];
                    let b = ints[j % ints.len()];
                    let t = tm.mk_lt(a, b);
                    bools.push(t);
                }
                2 if !bools.is_empty() => {
                    let a = bools[i % bools.len()];
                    let t = tm.mk_not(a);
                    bools.push(t);
                }
                3 if bools.len() >= 2 => {
                    let a = bools[i % bools.len()];
                    let b = bools[j % bools.len()];
                    let t = tm.mk_and(a, b);
                    bools.push(t);
                }
                4 if bools.len() >= 2 => {
                    let a = bools[i % bools.len()];
                    let b = bools[j % bools.len()];
                    let t = tm.mk_or(a, b);
                    bools.push(t);
                }
                5 => {
                    let a = ints[i % ints.len()];
                    let t = if j % 2 == 0 {
                        tm.mk_succ(a)
                    } else {
                        tm.mk_pred(a)
                    };
                    ints.push(t);
                }
                6 if !bools.is_empty() => {
                    let c = bools[i % bools.len()];
                    let a = ints[i % ints.len()];
                    let b = ints[j % ints.len()];
                    let t = tm.mk_ite_int(c, a, b);
                    ints.push(t);
                }
                _ => {
                    let a = ints[i % ints.len()];
                    let b = ints[j % ints.len()];
                    let t = tm.mk_le(a, b);
                    bools.push(t);
                }
            }
        }
        match bools.last() {
            Some(&t) => t,
            None => tm.mk_true(),
        }
    }

    fn decide(tm: &TermManager, phi: TermId, mode: EncodingMode) -> Option<bool> {
        let analysis = SepAnalysis::new(tm, phi, &HashSet::new());
        let opts = EncodeOptions {
            mode,
            ..EncodeOptions::default()
        };
        let encoded = encode(tm, phi, &analysis, &opts).ok()?;
        let mut solver = Solver::new();
        let map = load_into_solver(
            &encoded.circuit,
            &[!encoded.formula],
            &encoded.trans_clauses,
            CnfMode::Tseitin,
            &mut solver,
        );
        match solver.solve() {
            SolveResult::Unsat => Some(true),
            SolveResult::Sat => {
                // Counterexamples must falsify.
                let cex = decode_model(&encoded, &map, &solver);
                assert!(!cex.evaluate(tm, phi), "bad counterexample under {mode:?}");
                Some(false)
            }
            SolveResult::Unknown(_) => None,
        }
    }

    fn random_recipe(rng: &mut Prng) -> Vec<(u8, u8, u8)> {
        let len = rng.random_range(2usize..18);
        (0..len)
            .map(|_| (rng.random_u8(), rng.random_u8(), rng.random_u8()))
            .collect()
    }

    /// SD, EIJ, HYBRID and FixedHybrid agree with the brute-force
    /// oracle on random separation formulas — the central correctness
    /// property of the whole encoding stack.
    #[test]
    fn all_encodings_agree_with_oracle() {
        let mut rng = Prng::seed_from_u64(0xe4c_0001);
        for _case in 0..40 {
            let recipe = random_recipe(&mut rng);
            let mut tm = TermManager::new();
            let phi = build_random_sep(&mut tm, &recipe, 3);
            let analysis = SepAnalysis::new(&tm, phi, &HashSet::new());
            let expected = match brute_force_validity(&tm, phi, &analysis, 1, 500_000) {
                OracleResult::Valid => true,
                OracleResult::Invalid(_) => false,
                OracleResult::TooLarge => continue,
            };
            for mode in [
                EncodingMode::Sd,
                EncodingMode::Eij,
                EncodingMode::Hybrid(1),
                EncodingMode::FixedHybrid,
            ] {
                let got = decide(&tm, phi, mode);
                assert_eq!(got, Some(expected), "mode {mode:?}, recipe {recipe:?}");
            }
        }
    }
}
