//! Per-constraint (EIJ) predicate variables and transitivity constraints
//! (paper §2.1.2 method 2 and §4 step 6).
//!
//! Every separation predicate `x − y ≤ c` over `V_g` constants is encoded
//! with one fresh Boolean variable. Assignments to those variables that
//! correspond to no integer model are ruled out by *transitivity
//! constraints*, generated here by variable elimination on the inequality
//! graph (Fourier–Motzkin over difference constraints):
//!
//! * each predicate variable `e(x,y,c)` contributes the edge `x→y` with
//!   weight `c` when true and the complement edge `y→x` with weight
//!   `−c−1` when false (integers: `¬(x−y≤c) ⇔ y−x ≤ −c−1`);
//! * eliminating a vertex `m` composes every in/out edge pair into a
//!   derived predicate with the clause `e₁ ∧ e₂ ⇒ e₃`, creating fresh
//!   predicate variables as needed (the paper notes this variable growth
//!   explicitly);
//! * a composition closing a negative self-loop yields a conflict clause.
//!
//! The number of generated constraints can grow exponentially — this is the
//! EIJ blow-up the paper's Figures 3 and 5 document, so the generator takes
//! a budget and reports overflow rather than running away.

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::time::Instant;

use sufsat_sat::CancelToken;
use sufsat_suf::VarSym;

use crate::circuit::{Circuit, Signal};

/// Canonical store of per-constraint predicate variables.
///
/// The canonical key of the bound `x − y ≤ c` is `(x, y, c)` with `x < y`
/// in symbol order; the opposite orientation is represented by the negated
/// signal of the complementary canonical bound.
#[derive(Debug, Clone, Default)]
pub struct BoundTable {
    vars: HashMap<(VarSym, VarSym, i64), Signal>,
    /// Canonical keys created by atom encoding (as opposed to derived
    /// predicates introduced during transitivity generation). Only these
    /// carry two-sided semantics: their *negation* asserts the complement
    /// bound. Derived variables are one-sided helpers (`e₁ ∧ e₂ ⇒ e₃`)
    /// and are ignored when decoding models.
    original: HashSet<(VarSym, VarSym, i64)>,
}

impl BoundTable {
    /// Creates an empty table.
    pub fn new() -> BoundTable {
        BoundTable::default()
    }

    /// The signal representing the *atom-level* bound `x − y ≤ c`,
    /// allocating a fresh circuit input for the canonical bound if needed
    /// and marking it original (two-sided).
    ///
    /// # Panics
    ///
    /// Panics if `x == y` (such comparisons are constants, not predicates).
    pub fn bound(&mut self, circuit: &mut Circuit, x: VarSym, y: VarSym, c: i64) -> Signal {
        let s = self.derived_bound(circuit, x, y, c);
        let key = if x < y { (x, y, c) } else { (y, x, -c - 1) };
        self.original.insert(key);
        s
    }

    /// The signal for a bound used as a one-sided derived predicate during
    /// transitivity generation (not marked original).
    ///
    /// # Panics
    ///
    /// Panics if `x == y`.
    pub fn derived_bound(&mut self, circuit: &mut Circuit, x: VarSym, y: VarSym, c: i64) -> Signal {
        assert_ne!(x, y, "same-variable bounds are constants");
        if x < y {
            *self
                .vars
                .entry((x, y, c))
                .or_insert_with(|| circuit.input())
        } else {
            // x - y <= c  <=>  !(y - x <= -c-1)
            let s = *self
                .vars
                .entry((y, x, -c - 1))
                .or_insert_with(|| circuit.input());
            !s
        }
    }

    /// Whether the canonical bound covering `(x, y, c)` is atom-original.
    pub fn is_original(&self, x: VarSym, y: VarSym, c: i64) -> bool {
        let key = if x < y { (x, y, c) } else { (y, x, -c - 1) };
        self.original.contains(&key)
    }

    /// Looks up a canonical bound without allocating.
    pub fn find(&self, x: VarSym, y: VarSym, c: i64) -> Option<Signal> {
        if x < y {
            self.vars.get(&(x, y, c)).copied()
        } else {
            self.vars.get(&(y, x, -c - 1)).map(|&s| !s)
        }
    }

    /// Number of canonical predicate variables allocated.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether no predicate variables have been allocated.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Iterates over canonical bounds `(x, y, c, signal)` with `x < y`.
    pub fn iter(&self) -> impl Iterator<Item = (VarSym, VarSym, i64, Signal)> + '_ {
        self.vars.iter().map(|(&(x, y, c), &s)| (x, y, c, s))
    }

    /// Iterates over atom-original canonical bounds only — the ones whose
    /// truth value carries two-sided difference-constraint semantics (used
    /// by model decoding).
    pub fn iter_original(&self) -> impl Iterator<Item = (VarSym, VarSym, i64, Signal)> + '_ {
        self.original
            .iter()
            .map(|&(x, y, c)| (x, y, c, self.vars[&(x, y, c)]))
    }
}

/// Error raised when transitivity generation exceeds its budget, mirroring
/// the paper's EIJ translation-stage timeouts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransBudgetExceeded {
    /// Constraints generated before giving up.
    pub generated: usize,
    /// The configured budget.
    pub budget: usize,
    /// Whether the wall-clock deadline (rather than the clause budget)
    /// stopped generation.
    pub timed_out: bool,
    /// Whether a raised [`CancelToken`] stopped generation.
    pub cancelled: bool,
}

impl fmt::Display for TransBudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "transitivity-constraint budget exceeded: {} constraints generated (budget {})",
            self.generated, self.budget
        )
    }
}

impl Error for TransBudgetExceeded {}

/// Vertex elimination order for transitivity generation — a design choice
/// DESIGN.md calls out for ablation. Min-degree approximates a good
/// chordalization (fewer fill-in edges); input order is the naive baseline.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Default)]
pub enum ElimOrder {
    /// Greedy minimum-degree (default).
    #[default]
    MinDegree,
    /// Symbol-index order.
    InputOrder,
}

pub(crate) fn clause_key(clause: &[Signal]) -> Vec<Signal> {
    let mut k = clause.to_vec();
    k.sort_unstable();
    k
}

/// Canonical store of *equality* predicate variables for equality-only
/// classes (Bryant–Velev): one variable per predicate `x = y + c`, instead
/// of the two-sided bound pair — the representation behind the paper's
/// remark that equality-only transitivity grows only polynomially.
#[derive(Debug, Clone, Default)]
pub struct EqTable {
    vars: HashMap<(VarSym, VarSym, i64), Signal>,
    original: HashSet<(VarSym, VarSym, i64)>,
}

impl EqTable {
    /// Creates an empty table.
    pub fn new() -> EqTable {
        EqTable::default()
    }

    /// The signal for the atom-level equality `x = y + c` (marked
    /// original).
    ///
    /// # Panics
    ///
    /// Panics if `x == y`.
    pub fn equality(&mut self, circuit: &mut Circuit, x: VarSym, y: VarSym, c: i64) -> Signal {
        let s = self.derived_equality(circuit, x, y, c);
        let key = if x < y { (x, y, c) } else { (y, x, -c) };
        self.original.insert(key);
        s
    }

    /// The signal for an equality used as a one-sided derived predicate.
    ///
    /// # Panics
    ///
    /// Panics if `x == y`.
    pub fn derived_equality(
        &mut self,
        circuit: &mut Circuit,
        x: VarSym,
        y: VarSym,
        c: i64,
    ) -> Signal {
        assert_ne!(x, y, "same-variable equalities are constants");
        // x = y + c  <=>  y = x + (-c); canonical orientation x < y.
        let key = if x < y { (x, y, c) } else { (y, x, -c) };
        *self.vars.entry(key).or_insert_with(|| circuit.input())
    }

    /// Number of canonical equality variables allocated.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether no equality variables have been allocated.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Iterates over all canonical equalities `(x, y, c, signal)`, meaning
    /// `x = y + c` with `x < y`.
    pub fn iter(&self) -> impl Iterator<Item = (VarSym, VarSym, i64, Signal)> + '_ {
        self.vars.iter().map(|(&(x, y, c), &s)| (x, y, c, s))
    }

    /// Iterates over atom-original canonical equalities only.
    pub fn iter_original(&self) -> impl Iterator<Item = (VarSym, VarSym, i64, Signal)> + '_ {
        self.original
            .iter()
            .map(|&(x, y, c)| (x, y, c, self.vars[&(x, y, c)]))
    }
}

/// Generates transitivity constraints for an equality-only class by
/// variable elimination over equality edges:
///
/// * `e(x,y,c₁) ∧ e(y,z,c₂) ⇒ e(x,z,c₁+c₂)` (derived equalities created on
///   demand, one-sided);
/// * a composition closing a loop with nonzero offset sum is a conflict.
///
/// A false equality is a disequality; it needs no graph edge because any
/// positive path forcing the same difference resolves to the *same*
/// canonical variable, contradicting it directly.
///
/// # Errors
///
/// Returns [`TransBudgetExceeded`] past `budget` clauses.
pub fn generate_equality_transitivity(
    circuit: &mut Circuit,
    table: &mut EqTable,
    class_vars: &[VarSym],
    budget: usize,
    deadline: Option<Instant>,
    cancel: Option<&CancelToken>,
) -> Result<Vec<Vec<Signal>>, TransBudgetExceeded> {
    generate_equality_transitivity_ordered(
        circuit,
        table,
        class_vars,
        budget,
        deadline,
        cancel,
        ElimOrder::MinDegree,
    )
}

/// [`generate_equality_transitivity`] with an explicit elimination order.
///
/// # Errors
///
/// Returns [`TransBudgetExceeded`] past `budget` clauses or the deadline.
pub fn generate_equality_transitivity_ordered(
    circuit: &mut Circuit,
    table: &mut EqTable,
    class_vars: &[VarSym],
    budget: usize,
    deadline: Option<Instant>,
    cancel: Option<&CancelToken>,
    order: ElimOrder,
) -> Result<Vec<Vec<Signal>>, TransBudgetExceeded> {
    let members: HashSet<VarSym> = class_vars.iter().copied().collect();
    let mut clauses: Vec<Vec<Signal>> = Vec::new();
    let mut seen_clauses: HashSet<Vec<Signal>> = HashSet::new();
    let mut edges: HashSet<Edge> = HashSet::new();
    let mut edges_of: HashMap<VarSym, HashSet<Edge>> = HashMap::new();
    let add_edge =
        |e: Edge, edges: &mut HashSet<Edge>, edges_of: &mut HashMap<VarSym, HashSet<Edge>>| {
            if edges.insert(e) {
                edges_of.entry(e.u).or_default().insert(e);
                edges_of.entry(e.v).or_default().insert(e);
            }
        };
    // Original equalities contribute both orientations (same literal).
    let initial: Vec<(VarSym, VarSym, i64, Signal)> = table
        .iter_original()
        .filter(|&(x, y, _, _)| members.contains(&x) && members.contains(&y))
        .collect();
    for (x, y, c, s) in initial {
        add_edge(
            Edge {
                u: x,
                v: y,
                w: c,
                lit: s,
            },
            &mut edges,
            &mut edges_of,
        );
        add_edge(
            Edge {
                u: y,
                v: x,
                w: -c,
                lit: s,
            },
            &mut edges,
            &mut edges_of,
        );
    }

    let mut steps = 0usize;
    let mut remaining: HashSet<VarSym> = members.clone();
    while remaining.len() > 1 {
        let m = *remaining
            .iter()
            .min_by_key(|v| match order {
                ElimOrder::MinDegree => (edges_of.get(v).map_or(0, HashSet::len), v.index()),
                ElimOrder::InputOrder => (0, v.index()),
            })
            .expect("non-empty");
        let incident: Vec<Edge> = edges_of
            .get(&m)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        let ins: Vec<Edge> = incident.iter().copied().filter(|e| e.v == m).collect();
        let outs: Vec<Edge> = incident.iter().copied().filter(|e| e.u == m).collect();
        for &ein in &ins {
            for &eout in &outs {
                if ein.lit == eout.lit && ein.u == eout.v {
                    // An edge composed with its own reverse: offset 0 loop.
                    continue;
                }
                let w = ein.w + eout.w;
                if ein.u == eout.v {
                    if w != 0 {
                        // x = x + w with w != 0: contradiction.
                        let clause = vec![!ein.lit, !eout.lit];
                        if seen_clauses.insert(clause_key(&clause)) {
                            clauses.push(clause);
                        }
                    }
                    continue;
                }
                let lit3 = table.derived_equality(circuit, ein.u, eout.v, w);
                // Bryant–Velev triangle constraints: all three rotations.
                // Unlike bound predicates, a false equality contributes no
                // graph edge, so each triangle must be constrained in every
                // direction for completeness.
                for (a, b, c) in [
                    (ein.lit, eout.lit, lit3),
                    (ein.lit, lit3, eout.lit),
                    (eout.lit, lit3, ein.lit),
                ] {
                    if c == a || c == b {
                        continue; // e1 ∧ e2 ⇒ e1: tautology
                    }
                    let clause = vec![!a, !b, c];
                    if seen_clauses.insert(clause_key(&clause)) {
                        clauses.push(clause);
                    }
                }
                // Derived equality: both orientations, same literal.
                add_edge(
                    Edge {
                        u: ein.u,
                        v: eout.v,
                        w,
                        lit: lit3,
                    },
                    &mut edges,
                    &mut edges_of,
                );
                add_edge(
                    Edge {
                        u: eout.v,
                        v: ein.u,
                        w: -w,
                        lit: lit3,
                    },
                    &mut edges,
                    &mut edges_of,
                );
                if clauses.len() > budget {
                    return Err(TransBudgetExceeded {
                        generated: clauses.len(),
                        budget,
                        timed_out: false,
                        cancelled: false,
                    });
                }
                steps += 1;
                if steps.is_multiple_of(4096) {
                    let timed_out = deadline.is_some_and(|d| Instant::now() >= d);
                    let cancelled = cancel.is_some_and(CancelToken::is_cancelled);
                    if timed_out || cancelled {
                        return Err(TransBudgetExceeded {
                            generated: clauses.len(),
                            budget,
                            timed_out,
                            cancelled,
                        });
                    }
                }
            }
        }
        remaining.remove(&m);
        for e in incident {
            edges.remove(&e);
            if let Some(set) = edges_of.get_mut(&e.u) {
                set.remove(&e);
            }
            if let Some(set) = edges_of.get_mut(&e.v) {
                set.remove(&e);
            }
        }
        edges_of.remove(&m);
    }
    Ok(clauses)
}

#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
struct Edge {
    u: VarSym,
    v: VarSym,
    w: i64,
    lit: Signal,
}

/// Generates the transitivity constraints for one class of `V_g`
/// constants, given the predicate variables already allocated in `table`
/// for pairs within `class_vars`.
///
/// Returns clauses over circuit signals. New predicate variables created
/// for derived bounds are added to `table` (and to the circuit as inputs).
///
/// # Errors
///
/// Returns [`TransBudgetExceeded`] when more than `budget` clauses would be
/// generated.
pub fn generate_transitivity(
    circuit: &mut Circuit,
    table: &mut BoundTable,
    class_vars: &[VarSym],
    budget: usize,
    deadline: Option<Instant>,
    cancel: Option<&CancelToken>,
) -> Result<Vec<Vec<Signal>>, TransBudgetExceeded> {
    generate_transitivity_ordered(
        circuit,
        table,
        class_vars,
        budget,
        deadline,
        cancel,
        ElimOrder::MinDegree,
    )
}

/// [`generate_transitivity`] with an explicit elimination order.
///
/// # Errors
///
/// Returns [`TransBudgetExceeded`] past `budget` clauses or the deadline.
pub fn generate_transitivity_ordered(
    circuit: &mut Circuit,
    table: &mut BoundTable,
    class_vars: &[VarSym],
    budget: usize,
    deadline: Option<Instant>,
    cancel: Option<&CancelToken>,
    order: ElimOrder,
) -> Result<Vec<Vec<Signal>>, TransBudgetExceeded> {
    let members: HashSet<VarSym> = class_vars.iter().copied().collect();
    let mut clauses: Vec<Vec<Signal>> = Vec::new();
    let mut seen_clauses: HashSet<Vec<Signal>> = HashSet::new();
    let mut edges: HashSet<Edge> = HashSet::new();
    let mut edges_of: HashMap<VarSym, HashSet<Edge>> = HashMap::new();

    let add_edge =
        |e: Edge, edges: &mut HashSet<Edge>, edges_of: &mut HashMap<VarSym, HashSet<Edge>>| {
            if edges.insert(e) {
                edges_of.entry(e.u).or_default().insert(e);
                edges_of.entry(e.v).or_default().insert(e);
            }
        };

    // Atom-original predicates carry two-sided semantics: `e` asserts the
    // bound, `¬e` asserts the complement. Derived predicates introduced
    // below are one-sided (`e₁ ∧ e₂ ⇒ e₃` only), which keeps the derived
    // constants bounded by path sums — in particular polynomial for
    // equality-only classes, matching Bryant–Velev.
    let initial: Vec<(VarSym, VarSym, i64, Signal)> = table
        .iter_original()
        .filter(|&(x, y, _, _)| members.contains(&x) && members.contains(&y))
        .collect();
    for (x, y, c, s) in initial {
        add_edge(
            Edge {
                u: x,
                v: y,
                w: c,
                lit: s,
            },
            &mut edges,
            &mut edges_of,
        );
        add_edge(
            Edge {
                u: y,
                v: x,
                w: -c - 1,
                lit: !s,
            },
            &mut edges,
            &mut edges_of,
        );
    }

    let mut steps = 0usize;
    let mut remaining: HashSet<VarSym> = members.clone();
    while remaining.len() > 1 {
        // Min-degree vertex among the remaining.
        let m = *remaining
            .iter()
            .min_by_key(|v| match order {
                ElimOrder::MinDegree => (edges_of.get(v).map_or(0, HashSet::len), v.index()),
                ElimOrder::InputOrder => (0, v.index()),
            })
            .expect("non-empty");
        let incident: Vec<Edge> = edges_of
            .get(&m)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        let ins: Vec<Edge> = incident.iter().copied().filter(|e| e.v == m).collect();
        let outs: Vec<Edge> = incident.iter().copied().filter(|e| e.u == m).collect();
        for &ein in &ins {
            for &eout in &outs {
                if ein.lit == !eout.lit {
                    // An edge composed with its own complement: tautology.
                    continue;
                }
                let w = ein.w + eout.w;
                if ein.u == eout.v {
                    // Self-loop: a negative one is a contradiction.
                    if w < 0 {
                        let clause = vec![!ein.lit, !eout.lit];
                        if seen_clauses.insert(clause_key(&clause)) {
                            clauses.push(clause);
                        }
                    }
                    continue;
                }
                let lit3 = table.derived_bound(circuit, ein.u, eout.v, w);
                if lit3 != ein.lit && lit3 != eout.lit {
                    // Otherwise e1 ∧ e2 ⇒ e1: a tautology.
                    let clause = vec![!ein.lit, !eout.lit, lit3];
                    if seen_clauses.insert(clause_key(&clause)) {
                        clauses.push(clause);
                    }
                }
                // Only the derived direction joins the graph, so later
                // eliminations can keep collapsing cycles through it;
                // re-adding existing edges is idempotent.
                add_edge(
                    Edge {
                        u: ein.u,
                        v: eout.v,
                        w,
                        lit: lit3,
                    },
                    &mut edges,
                    &mut edges_of,
                );
                if clauses.len() > budget {
                    return Err(TransBudgetExceeded {
                        generated: clauses.len(),
                        budget,
                        timed_out: false,
                        cancelled: false,
                    });
                }
                steps += 1;
                if steps.is_multiple_of(4096) {
                    let timed_out = deadline.is_some_and(|d| Instant::now() >= d);
                    let cancelled = cancel.is_some_and(CancelToken::is_cancelled);
                    if timed_out || cancelled {
                        return Err(TransBudgetExceeded {
                            generated: clauses.len(),
                            budget,
                            timed_out,
                            cancelled,
                        });
                    }
                }
            }
        }
        // Remove m and its incident edges.
        remaining.remove(&m);
        for e in incident {
            edges.remove(&e);
            if let Some(set) = edges_of.get_mut(&e.u) {
                set.remove(&e);
            }
            if let Some(set) = edges_of.get_mut(&e.v) {
                set.remove(&e);
            }
        }
        edges_of.remove(&m);
    }
    Ok(clauses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufsat_suf::TermManager;

    fn vars(tm: &mut TermManager, n: usize) -> Vec<VarSym> {
        (0..n).map(|i| tm.int_var_sym(&format!("v{i}"))).collect()
    }

    /// Checks completeness and soundness of the generated constraints:
    ///
    /// * **completeness** — every assignment to all predicate variables
    ///   that satisfies the clauses gives an integer-feasible set of
    ///   *original* (two-sided) bounds;
    /// * **soundness** — every integer assignment, extended semantically to
    ///   all predicate variables (original and derived), satisfies the
    ///   clauses.
    fn check_complete_and_sound(n_vars: usize, bounds: &[(usize, usize, i64)]) {
        let mut tm = TermManager::new();
        let vs = vars(&mut tm, n_vars);
        let mut circuit = Circuit::new();
        let mut table = BoundTable::new();
        let sigs: Vec<Signal> = bounds
            .iter()
            .map(|&(x, y, c)| table.bound(&mut circuit, vs[x], vs[y], c))
            .collect();
        let clauses =
            generate_transitivity(&mut circuit, &mut table, &vs, 1_000_000, None, None).unwrap();
        let original: Vec<(VarSym, VarSym, i64, Signal)> = table.iter_original().collect();
        let all_bounds: Vec<(VarSym, VarSym, i64, Signal)> = table.iter().collect();
        let n_inputs = circuit.num_inputs();
        assert!(n_inputs <= 20, "test instance too large to enumerate");

        // Completeness over all Boolean assignments.
        for m in 0u64..(1 << n_inputs) {
            let inputs: Vec<bool> = (0..n_inputs).map(|i| m >> i & 1 == 1).collect();
            let clauses_ok = clauses
                .iter()
                .all(|cl| cl.iter().any(|&l| circuit.eval(l, &inputs)));
            if !clauses_ok {
                continue;
            }
            let mut diff: Vec<sufsat_seplog::Bound> = Vec::new();
            for (i, &(x, y, c, s)) in original.iter().enumerate() {
                if circuit.eval(s, &inputs) {
                    diff.push(sufsat_seplog::Bound { x, y, c, tag: i });
                } else {
                    diff.push(sufsat_seplog::Bound {
                        x: y,
                        y: x,
                        c: -c - 1,
                        tag: i,
                    });
                }
            }
            assert!(
                matches!(
                    sufsat_seplog::solve_bounds(&diff, &[]),
                    sufsat_seplog::DiffResult::Sat(_)
                ),
                "clauses satisfied but no integer model; assignment {m:b}"
            );
        }

        // Soundness over a grid of integer assignments.
        assert!(n_vars <= 4, "grid enumeration too large");
        let lo = -4i64;
        let hi = 4i64;
        let span = (hi - lo + 1) as u64;
        for point in 0..span.pow(n_vars as u32) {
            let mut vals = Vec::with_capacity(n_vars);
            let mut p = point;
            for _ in 0..n_vars {
                vals.push(lo + (p % span) as i64);
                p /= span;
            }
            // Semantic value of every canonical predicate variable.
            let mut inputs = vec![false; n_inputs];
            for &(x, y, c, s) in &all_bounds {
                let truth = vals[index_of(&vs, x)] - vals[index_of(&vs, y)] <= c;
                let gate_input = circuit.input_index(s).expect("canonical inputs");
                inputs[gate_input as usize] = truth;
            }
            for cl in &clauses {
                assert!(
                    cl.iter().any(|&l| circuit.eval(l, &inputs)),
                    "integer point {vals:?} violates a clause"
                );
            }
        }
        let _ = sigs;
    }

    fn index_of(vs: &[VarSym], v: VarSym) -> usize {
        vs.iter().position(|&x| x == v).expect("known var")
    }

    #[test]
    fn triangle_equalities() {
        // x = y, y = z, x = z as bound pairs is exercised via c = 0 bounds.
        check_complete_and_sound(3, &[(0, 1, 0), (1, 0, 0), (1, 2, 0), (2, 1, 0)]);
    }

    #[test]
    fn paper_example_three_cycle() {
        // x >= y, y >= z, z >= x+1: y-x<=0, z-y<=0, x-z<=-1.
        check_complete_and_sound(3, &[(1, 0, 0), (2, 1, 0), (0, 2, -1)]);
    }

    #[test]
    fn offsets_compose() {
        check_complete_and_sound(3, &[(0, 1, 2), (1, 2, -3), (2, 0, 1)]);
    }

    #[test]
    fn four_vertices_with_chords() {
        check_complete_and_sound(4, &[(0, 1, 0), (1, 2, 1), (2, 3, -1), (3, 0, 0)]);
    }

    #[test]
    fn same_pair_multiple_constants() {
        // x - y <= 0 and x - y <= 5: monotonicity must emerge.
        check_complete_and_sound(2, &[(0, 1, 0), (0, 1, 5)]);
    }

    #[test]
    fn complement_orientation_shares_variable() {
        let mut tm = TermManager::new();
        let vs = vars(&mut tm, 2);
        let mut circuit = Circuit::new();
        let mut table = BoundTable::new();
        let a = table.bound(&mut circuit, vs[0], vs[1], 3);
        let b = table.bound(&mut circuit, vs[1], vs[0], -4);
        assert_eq!(b, !a, "y-x<=-4 is the complement of x-y<=3");
        assert_eq!(table.len(), 1);
    }

    /// Exhaustive check of the equality-only generator: completeness over
    /// all Boolean assignments and soundness over an integer grid.
    fn check_eq_complete_and_sound(n_vars: usize, eqs: &[(usize, usize, i64)]) {
        let mut tm = TermManager::new();
        let vs = vars(&mut tm, n_vars);
        let mut circuit = Circuit::new();
        let mut table = EqTable::new();
        for &(x, y, c) in eqs {
            table.equality(&mut circuit, vs[x], vs[y], c);
        }
        let clauses =
            generate_equality_transitivity(&mut circuit, &mut table, &vs, 1_000_000, None, None).unwrap();
        let original: Vec<(VarSym, VarSym, i64, Signal)> = table.iter_original().collect();
        let all: Vec<(VarSym, VarSym, i64, Signal)> = table.iter().collect();
        let n_inputs = circuit.num_inputs();
        assert!(n_inputs <= 18, "too large to enumerate");

        // Completeness: clause-satisfying assignments extend to integers
        // where true equalities hold and false ones fail.
        for m in 0u64..(1 << n_inputs) {
            let inputs: Vec<bool> = (0..n_inputs).map(|i| m >> i & 1 == 1).collect();
            if !clauses
                .iter()
                .all(|cl| cl.iter().any(|&l| circuit.eval(l, &inputs)))
            {
                continue;
            }
            let mut bounds = Vec::new();
            let mut diseqs = Vec::new();
            for (i, &(x, y, c, s)) in original.iter().enumerate() {
                if circuit.eval(s, &inputs) {
                    bounds.push(sufsat_seplog::Bound { x, y, c, tag: i });
                    bounds.push(sufsat_seplog::Bound {
                        x: y,
                        y: x,
                        c: -c,
                        tag: i,
                    });
                } else {
                    diseqs.push(sufsat_seplog::Disequality { x, y, c, tag: i });
                }
            }
            assert!(
                matches!(
                    sufsat_seplog::solve_with_disequalities(&bounds, &diseqs, &[]),
                    sufsat_seplog::DiffResult::Sat(_)
                ),
                "clauses satisfied but originals infeasible; assignment {m:b}"
            );
        }

        // Soundness over an integer grid.
        assert!(n_vars <= 4);
        let (lo, hi) = (-3i64, 3i64);
        let span = (hi - lo + 1) as u64;
        for point in 0..span.pow(n_vars as u32) {
            let mut vals = Vec::with_capacity(n_vars);
            let mut p = point;
            for _ in 0..n_vars {
                vals.push(lo + (p % span) as i64);
                p /= span;
            }
            let mut inputs = vec![false; n_inputs];
            for &(x, y, c, s) in &all {
                let truth = vals[index_of(&vs, x)] == vals[index_of(&vs, y)] + c;
                let input = circuit.input_index(s).expect("inputs");
                inputs[input as usize] = truth;
            }
            for cl in &clauses {
                assert!(
                    cl.iter().any(|&l| circuit.eval(l, &inputs)),
                    "integer point {vals:?} violates an equality clause"
                );
            }
        }
    }

    #[test]
    fn equality_triangle() {
        check_eq_complete_and_sound(3, &[(0, 1, 0), (1, 2, 0), (0, 2, 0)]);
    }

    #[test]
    fn equality_with_offsets() {
        check_eq_complete_and_sound(3, &[(0, 1, 2), (1, 2, -1), (0, 2, 1)]);
    }

    #[test]
    fn equality_four_vars_chain() {
        check_eq_complete_and_sound(4, &[(0, 1, 0), (1, 2, 1), (2, 3, 0), (0, 3, 1)]);
    }

    #[test]
    fn equality_same_pair_two_constants() {
        // x = y and x = y + 1 cannot both hold.
        check_eq_complete_and_sound(2, &[(0, 1, 0), (0, 1, 1)]);
    }

    #[test]
    fn equality_orientation_shares_variable() {
        let mut tm = TermManager::new();
        let vs = vars(&mut tm, 2);
        let mut circuit = Circuit::new();
        let mut table = EqTable::new();
        let a = table.equality(&mut circuit, vs[0], vs[1], 3);
        let b = table.equality(&mut circuit, vs[1], vs[0], -3);
        assert_eq!(a, b, "x = y + 3 and y = x - 3 are the same predicate");
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn equality_generation_is_polynomial_on_cliques() {
        // A 12-variable equality clique: the single-variable representation
        // must stay small (this is the Bryant–Velev polynomial case the
        // paper contrasts with general separation predicates).
        let mut tm = TermManager::new();
        let vs = vars(&mut tm, 12);
        let mut circuit = Circuit::new();
        let mut table = EqTable::new();
        for i in 0..12 {
            for j in i + 1..12 {
                table.equality(&mut circuit, vs[i], vs[j], 0);
            }
        }
        let clauses =
            generate_equality_transitivity(&mut circuit, &mut table, &vs, 1_000_000, None, None).unwrap();
        assert!(
            clauses.len() < 2000,
            "equality transitivity should be cubic-ish, got {}",
            clauses.len()
        );
        assert!(
            table.len() < 200,
            "derived vars bounded, got {}",
            table.len()
        );
    }

    #[test]
    fn elimination_orders_are_both_complete() {
        // Same completeness battery under input-order elimination.
        for order in [ElimOrder::MinDegree, ElimOrder::InputOrder] {
            let mut tm = TermManager::new();
            let vs = vars(&mut tm, 4);
            let mut circuit = Circuit::new();
            let mut table = BoundTable::new();
            let raw = [(0usize, 1usize, 0i64), (1, 2, 1), (2, 3, -1), (3, 0, 0)];
            for &(x, y, c) in &raw {
                table.bound(&mut circuit, vs[x], vs[y], c);
            }
            let clauses = generate_transitivity_ordered(
                &mut circuit,
                &mut table,
                &vs,
                1_000_000,
                None,
                None,
                order,
            )
            .unwrap();
            let original: Vec<(VarSym, VarSym, i64, Signal)> = table.iter_original().collect();
            let n_inputs = circuit.num_inputs();
            assert!(n_inputs <= 18);
            for m in 0u64..(1 << n_inputs) {
                let inputs: Vec<bool> = (0..n_inputs).map(|i| m >> i & 1 == 1).collect();
                if !clauses
                    .iter()
                    .all(|cl| cl.iter().any(|&l| circuit.eval(l, &inputs)))
                {
                    continue;
                }
                let mut diff = Vec::new();
                for (i, &(x, y, c, s)) in original.iter().enumerate() {
                    if circuit.eval(s, &inputs) {
                        diff.push(sufsat_seplog::Bound { x, y, c, tag: i });
                    } else {
                        diff.push(sufsat_seplog::Bound {
                            x: y,
                            y: x,
                            c: -c - 1,
                            tag: i,
                        });
                    }
                }
                assert!(
                    matches!(
                        sufsat_seplog::solve_bounds(&diff, &[]),
                        sufsat_seplog::DiffResult::Sat(_)
                    ),
                    "{order:?}: assignment {m:b} satisfied clauses but is infeasible"
                );
            }
        }
    }

    #[test]
    fn budget_overflow_reports() {
        // A dense clique with many distinct constants forces many derived
        // constraints; a tiny budget must trip.
        let mut tm = TermManager::new();
        let vs = vars(&mut tm, 6);
        let mut circuit = Circuit::new();
        let mut table = BoundTable::new();
        for i in 0..6 {
            for j in 0..6 {
                if i != j {
                    for c in [-2i64, 0, 2] {
                        table.bound(&mut circuit, vs[i], vs[j], c + i as i64);
                    }
                }
            }
        }
        let r = generate_transitivity(&mut circuit, &mut table, &vs, 10, None, None);
        assert!(matches!(r, Err(TransBudgetExceeded { .. })));
    }

    #[test]
    fn empty_class_generates_nothing() {
        let mut tm = TermManager::new();
        let vs = vars(&mut tm, 3);
        let mut circuit = Circuit::new();
        let mut table = BoundTable::new();
        let clauses = generate_transitivity(&mut circuit, &mut table, &vs, 100, None, None).unwrap();
        assert!(clauses.is_empty());
    }
}
