//! Resumable encoder state for incremental sessions.
//!
//! [`crate::encode`] lowers one snapshot of a separation formula in a
//! single shot. An incremental session instead asserts formulas one at a
//! time and wants each `check()` to encode only what is new, keeping the
//! circuit, the predicate-variable tables and the per-constant bit-vectors
//! of earlier checks alive so the SAT solver can keep its learnt clauses.
//!
//! [`IncrementalEncoder`] makes that sound by *committing* encoding
//! decisions the first time they are taken and refusing to change them
//! afterwards:
//!
//! * every `V_g` constant is committed to a **domain** (a method — SD or
//!   EIJ — plus SD sizing parameters) the first time it is encoded; later
//!   assertions may only add members to a domain, never move a constant
//!   between domains or change a domain's method;
//! * the global offset shift, the `V_p` value lanes and each constant's
//!   p/g polarity classification are committed the same way;
//! * SD domains are sized with headroom ([`VAR_BITS_HEADROOM`] extra bits)
//!   so that growing equivalence classes keep fitting — a domain larger
//!   than the small-model bound requires is still sound *and* complete.
//!
//! When a new assertion cannot be hosted under the committed decisions
//! (classes straddling two domains, a polarity flip, a range overflow…)
//! [`IncrementalEncoder::check_compatible`] reports a [`ReencodeReason`]
//! and the session falls back to rebuilding encoder + solver from scratch
//! — the sound fallback, never a silent approximation.
//!
//! Transitivity constraints are regenerated per live EIJ class on every
//! extension (the generators in [`crate::trans`] are deterministic and
//! their tables idempotent), and a session-level dedup set ensures each
//! clause is handed to the caller exactly once. Stale clauses over
//! predicates of retracted assertions remain loaded: transitivity clauses
//! are universally valid, so they never affect satisfiability.

use std::collections::{HashMap, HashSet};

use sufsat_seplog::{AtomOp, GroundTerm, PredKey, SepAnalysis};
use sufsat_suf::{BoolSym, Sort, Term, TermId, TermManager, VarSym};

use crate::circuit::{Circuit, Signal};
use crate::encoder::{ClassMethod, DecodeInfo, EncodeOptions, EncodingMode};
use crate::trans::{
    clause_key, generate_equality_transitivity, generate_transitivity, BoundTable, EqTable,
    TransBudgetExceeded,
};

/// Extra genuine bits given to every SD domain beyond its creating class's
/// small-model requirement, so classes can grow (via later assertions)
/// without forcing a re-encode. Oversized domains remain sound and
/// complete; they only cost a few adder gates.
pub const VAR_BITS_HEADROOM: usize = 2;

/// Why a new assertion cannot be hosted by the committed encoder state and
/// the session must rebuild from scratch.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum ReencodeReason {
    /// A live equivalence class spans constants committed to two different
    /// domains — the committed methods/parameters cannot represent the
    /// merged class uniformly.
    DomainMerge,
    /// A domain committed with the equality-only predicate representation
    /// (one variable per equality) now sees an inequality, which needs the
    /// two-sided bound representation.
    EqOnlyLost,
    /// A live class's small-model range exceeds the bit-width its SD
    /// domain was committed with (even after headroom).
    RangeOverflow,
    /// A constant's positive-equality classification (p vs. g) changed —
    /// cached atom encodings for it are no longer valid.
    PolarityFlip,
    /// A leaf offset exceeds the committed global offset cap, invalidating
    /// the committed shift and `V_p` lane spacing.
    OffsetOverflow,
    /// More `V_p` constants than the committed value lanes can host.
    PLaneOverflow,
}

impl std::fmt::Display for ReencodeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ReencodeReason::DomainMerge => "live class spans two committed domains",
            ReencodeReason::EqOnlyLost => "equality-only domain gained an inequality",
            ReencodeReason::RangeOverflow => "class range exceeds committed SD bit-width",
            ReencodeReason::PolarityFlip => "constant's p/g classification changed",
            ReencodeReason::OffsetOverflow => "leaf offset exceeds committed cap",
            ReencodeReason::PLaneOverflow => "V_p count exceeds committed value lanes",
        };
        f.write_str(s)
    }
}

/// One committed encoding domain: a set of `V_g` constants sharing a
/// method and (for SD) sizing parameters.
#[derive(Debug, Clone)]
struct Domain {
    method: ClassMethod,
    /// Equality-only predicate representation (EIJ domains).
    eq_only: bool,
    /// Genuine input bits per constant (SD domains).
    var_bits: usize,
    /// Full arithmetic width (SD domains).
    width: usize,
    /// First value of the `V_p` band, pre-shift (SD domains).
    p_base: u64,
}

/// What one [`IncrementalEncoder::extend`] call produced.
#[derive(Debug, Clone)]
pub struct Delta {
    /// The signal of each requested root, in request order (cached or
    /// freshly encoded).
    pub roots: Vec<Signal>,
    /// Transitivity clauses not yet handed out by earlier extends; the
    /// caller must load them (unguarded — they are universally valid).
    pub new_trans: Vec<Vec<Signal>>,
    /// Decode metadata scoped to the *live* classes of this extension
    /// (predicates of retracted assertions are filtered out so decoding
    /// never trips over dead, unconstrained predicate variables).
    pub decode: DecodeInfo,
    /// Statistics of this extension.
    pub stats: DeltaStats,
}

/// Statistics of one [`IncrementalEncoder::extend`] call.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct DeltaStats {
    /// Gates added by this extension.
    pub new_gates: usize,
    /// Total gates in the shared circuit after it.
    pub total_gates: usize,
    /// Transitivity clauses newly handed out.
    pub new_trans: usize,
    /// Transitivity clauses regenerated but already handed out earlier
    /// (the reuse the incremental path exists for).
    pub dedup_trans: usize,
    /// Domains created by this extension.
    pub new_domains: usize,
    /// Live classes encoded with SD.
    pub sd_classes: usize,
    /// Live classes encoded with EIJ.
    pub eij_classes: usize,
    /// Canonical predicate variables allocated so far (original + derived).
    pub pred_vars: usize,
}

/// Monotone encoder state shared by every check of an incremental session.
#[derive(Debug, Default)]
pub struct IncrementalEncoder {
    circuit: Circuit,
    table: BoundTable,
    eq_table: EqTable,
    domains: Vec<Domain>,
    /// Committed domain of each `V_g` constant.
    var_domain: HashMap<VarSym, usize>,
    /// Committed p/g classification of every constant ever encoded.
    committed_pg: HashMap<VarSym, bool>,
    /// Committed global offset cap; fixed at the first extension.
    off_cap: Option<i64>,
    /// Committed `V_p` lane capacity; fixed at the first extension.
    p_lane_cap: usize,
    /// Committed `V_p` lane of each p-classified constant (grow-only).
    p_index: HashMap<VarSym, usize>,
    /// Cached signal per Boolean term.
    bool_sig: HashMap<TermId, Signal>,
    bool_inputs: HashMap<BoolSym, Signal>,
    /// Genuine (unextended) bits per SD-encoded constant.
    sd_var_bits: HashMap<VarSym, Vec<Signal>>,
    /// Encoded bit-vectors per (term, domain) context.
    sd_term_bits: HashMap<(TermId, usize), Vec<Signal>>,
    /// EIJ path enumerations per integer term.
    paths: HashMap<TermId, Vec<(Signal, GroundTerm)>>,
    /// Input indices of SD bits for decoding.
    sd_bit_inputs: HashMap<VarSym, Vec<u32>>,
    /// Transitivity clauses already handed out (sorted-signal keys).
    trans_seen: HashSet<Vec<Signal>>,
    trans_emitted: usize,
}

impl IncrementalEncoder {
    /// An empty encoder with nothing committed yet.
    pub fn new() -> IncrementalEncoder {
        IncrementalEncoder::default()
    }

    /// The shared circuit (for CNF loading and model decoding).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Whether the cached signal of `root` exists (it was encoded by an
    /// earlier extension and can be re-guarded without new gates).
    pub fn cached_root(&self, root: TermId) -> Option<Signal> {
        self.bool_sig.get(&root).copied()
    }

    /// Checks whether the live conjunction described by `analysis` can be
    /// hosted under the committed encoding decisions.
    ///
    /// # Errors
    ///
    /// Returns the first [`ReencodeReason`] making the committed state
    /// unusable; the caller must then rebuild encoder and solver from
    /// scratch (the sound fallback).
    pub fn check_compatible(&self, analysis: &SepAnalysis) -> Result<(), ReencodeReason> {
        let Some(off_cap) = self.off_cap else {
            // Nothing committed yet: the first extension fixes the globals.
            return Ok(());
        };
        if analysis.max_abs_offset > off_cap {
            return Err(ReencodeReason::OffsetOverflow);
        }
        // Polarity commitments: every constant of the live formula must
        // keep the classification it was first encoded under.
        for class in &analysis.classes {
            for &v in &class.vars {
                if self.committed_pg.get(&v).copied() == Some(true) {
                    return Err(ReencodeReason::PolarityFlip);
                }
            }
        }
        let mut p_new = 0usize;
        for &v in &analysis.p_vars {
            match self.committed_pg.get(&v) {
                Some(false) => return Err(ReencodeReason::PolarityFlip),
                Some(true) => {}
                None => p_new += 1,
            }
        }
        if self.p_index.len() + p_new > self.p_lane_cap {
            return Err(ReencodeReason::PLaneOverflow);
        }
        for class in &analysis.classes {
            let mut domain: Option<usize> = None;
            for &v in &class.vars {
                let Some(&d) = self.var_domain.get(&v) else {
                    continue;
                };
                match domain {
                    None => domain = Some(d),
                    Some(prev) if prev != d => return Err(ReencodeReason::DomainMerge),
                    Some(_) => {}
                }
            }
            let Some(d) = domain else {
                continue; // all-new class: a fresh domain will host it
            };
            let dom = &self.domains[d];
            match dom.method {
                ClassMethod::Sd => {
                    if class.range > 1u64 << dom.var_bits {
                        return Err(ReencodeReason::RangeOverflow);
                    }
                }
                ClassMethod::Eij => {
                    if dom.eq_only
                        && !class.predicates.iter().all(|p| matches!(p, PredKey::Eq(..)))
                    {
                        return Err(ReencodeReason::EqOnlyLost);
                    }
                }
            }
        }
        Ok(())
    }

    /// Encodes the given roots against the live `analysis`, extending the
    /// committed state monotonically. The caller must have verified
    /// [`Self::check_compatible`] first (violations panic here).
    ///
    /// # Errors
    ///
    /// Returns [`TransBudgetExceeded`] when transitivity regeneration
    /// blows past `options.trans_budget`. The committed state stays
    /// consistent (tables and circuit are monotone); a later extension
    /// with a larger budget can pick up where this one stopped.
    ///
    /// # Panics
    ///
    /// Panics if a root contains uninterpreted applications, if a `V_p`
    /// constant occurs under an inequality, or if the analysis is
    /// incompatible with the committed state.
    pub fn extend(
        &mut self,
        tm: &TermManager,
        analysis: &SepAnalysis,
        roots: &[TermId],
        options: &EncodeOptions,
    ) -> Result<Delta, TransBudgetExceeded> {
        let gates_before = self.circuit.num_gates();
        let obs_span = sufsat_obs::span_with!(
            "encode.extend",
            roots = roots.len(),
            classes = analysis.classes.len(),
            committed_domains = self.domains.len(),
        );

        // First extension commits the globals: the offset cap (with
        // headroom) and the V_p lane capacity.
        if self.off_cap.is_none() {
            self.off_cap = Some(4 * analysis.max_abs_offset + 8);
            self.p_lane_cap = 2 * analysis.p_vars.len() + 8;
        }
        let off_cap = self.off_cap.expect("committed above");
        let shift = off_cap as u64;
        let stride = (2 * off_cap + 1) as u64;

        // Commit p/g classifications and V_p lanes (sorted for
        // deterministic lane assignment).
        let mut p_fresh: Vec<VarSym> = analysis
            .p_vars
            .iter()
            .copied()
            .filter(|v| !self.p_index.contains_key(v))
            .collect();
        p_fresh.sort_unstable();
        for v in p_fresh {
            let lane = self.p_index.len();
            assert!(lane < self.p_lane_cap, "V_p lane overflow not caught");
            self.p_index.insert(v, lane);
            self.committed_pg.insert(v, true);
        }

        // Map live classes to domains, creating domains for all-new
        // classes and absorbing new members into committed ones.
        let mut new_domains = 0usize;
        let mut class_domain: Vec<usize> = Vec::with_capacity(analysis.classes.len());
        for class in &analysis.classes {
            let mut domain: Option<usize> = None;
            for &v in &class.vars {
                if let Some(&d) = self.var_domain.get(&v) {
                    assert!(
                        domain.is_none() || domain == Some(d),
                        "class spans two committed domains"
                    );
                    domain = Some(d);
                }
            }
            let d = match domain {
                Some(d) => d,
                None => {
                    let method = match options.mode {
                        EncodingMode::Sd => ClassMethod::Sd,
                        EncodingMode::Eij => ClassMethod::Eij,
                        EncodingMode::Hybrid(threshold) => {
                            if class.sep_cnt > threshold {
                                ClassMethod::Sd
                            } else {
                                ClassMethod::Eij
                            }
                        }
                        EncodingMode::FixedHybrid => {
                            let pure_eq = class
                                .predicates
                                .iter()
                                .all(|p| matches!(p, PredKey::Eq(_, _, 0)));
                            if pure_eq {
                                ClassMethod::Eij
                            } else {
                                ClassMethod::Sd
                            }
                        }
                    };
                    let eq_only = class
                        .predicates
                        .iter()
                        .all(|p| matches!(p, PredKey::Eq(..)));
                    let var_bits = bits_for(class.range.max(1)) + VAR_BITS_HEADROOM;
                    let g_max = (1u64 << var_bits) - 1 + shift + off_cap as u64;
                    let p_base = g_max + 1;
                    let max_value =
                        p_base + (self.p_lane_cap as u64 + 2) * stride + shift + stride;
                    self.domains.push(Domain {
                        method,
                        eq_only,
                        var_bits,
                        width: bits_for(max_value + 1),
                        p_base,
                    });
                    new_domains += 1;
                    self.domains.len() - 1
                }
            };
            for &v in &class.vars {
                self.var_domain.insert(v, d);
                self.committed_pg.insert(v, false);
            }
            class_domain.push(d);
        }

        // Encode the new roots against the shared caches.
        let mut ctx = ExtCtx {
            enc: &mut *self,
            tm,
            analysis,
            class_domain: &class_domain,
            shift,
            stride,
        };
        let root_sigs: Vec<Signal> = roots.iter().map(|&r| ctx.encode_root(r)).collect();

        // Regenerate transitivity for every live EIJ class and keep only
        // clauses not yet handed out. Regeneration over the *current* full
        // membership covers every historical predicate among the members,
        // so each check's clause set is complete for its live classes.
        let mut new_trans: Vec<Vec<Signal>> = Vec::new();
        let mut dedup_trans = 0usize;
        for (cid, class) in analysis.classes.iter().enumerate() {
            let dom = &self.domains[class_domain[cid]];
            if dom.method != ClassMethod::Eij {
                continue;
            }
            let budget = options
                .trans_budget
                .saturating_sub(self.trans_emitted + new_trans.len());
            let result = if dom.eq_only {
                generate_equality_transitivity(
                    &mut self.circuit,
                    &mut self.eq_table,
                    &class.vars,
                    budget,
                    options.deadline,
                    options.cancel.as_ref(),
                )
            } else {
                generate_transitivity(
                    &mut self.circuit,
                    &mut self.table,
                    &class.vars,
                    budget,
                    options.deadline,
                    options.cancel.as_ref(),
                )
            };
            let clauses = match result {
                Ok(clauses) => clauses,
                Err(err) => {
                    sufsat_obs::event!(
                        "encode.extend.abort",
                        class = cid,
                        cancelled = err.cancelled,
                        timed_out = err.timed_out,
                        generated = new_trans.len(),
                    );
                    return Err(err);
                }
            };
            for clause in clauses {
                if self.trans_seen.insert(clause_key(&clause)) {
                    new_trans.push(clause);
                } else {
                    dedup_trans += 1;
                }
            }
        }
        self.trans_emitted += new_trans.len();

        let decode = self.live_decode_info(analysis, &class_domain, off_cap);
        let stats = DeltaStats {
            new_gates: self.circuit.num_gates() - gates_before,
            total_gates: self.circuit.num_gates(),
            new_trans: new_trans.len(),
            dedup_trans,
            new_domains,
            sd_classes: class_domain
                .iter()
                .filter(|&&d| self.domains[d].method == ClassMethod::Sd)
                .count(),
            eij_classes: class_domain
                .iter()
                .filter(|&&d| self.domains[d].method == ClassMethod::Eij)
                .count(),
            pred_vars: self.table.len() + self.eq_table.len(),
        };
        if obs_span.is_recording() {
            sufsat_obs::event!(
                "encode.extend.done",
                new_gates = stats.new_gates,
                total_gates = stats.total_gates,
                new_trans = stats.new_trans,
                dedup_trans = stats.dedup_trans,
                new_domains = stats.new_domains,
                pred_vars = stats.pred_vars,
            );
        }
        Ok(Delta {
            roots: root_sigs,
            new_trans,
            decode,
            stats,
        })
    }

    /// Decode metadata restricted to the live classes: only canonical
    /// predicates whose *both* endpoints sit in the same live EIJ class
    /// are included, so predicates surviving from retracted assertions
    /// (unconstrained in the current model) cannot poison decoding.
    fn live_decode_info(
        &self,
        analysis: &SepAnalysis,
        class_domain: &[usize],
        off_cap: i64,
    ) -> DecodeInfo {
        let mut eij_class_of: HashMap<VarSym, usize> = HashMap::new();
        for (cid, class) in analysis.classes.iter().enumerate() {
            if self.domains[class_domain[cid]].method == ClassMethod::Eij {
                for &v in &class.vars {
                    eij_class_of.insert(v, cid);
                }
            }
        }
        let same_live_class = |x: VarSym, y: VarSym| {
            matches!((eij_class_of.get(&x), eij_class_of.get(&y)), (Some(a), Some(b)) if a == b)
        };
        let mut p_sorted: Vec<VarSym> = analysis.p_vars.iter().copied().collect();
        p_sorted.sort_unstable();
        DecodeInfo {
            sd_bits: self.sd_bit_inputs.clone(),
            eij_bounds: self
                .table
                .iter_original()
                .filter(|&(x, y, _, _)| same_live_class(x, y))
                .map(|(x, y, c, s)| {
                    let input = self
                        .circuit
                        .input_index(s)
                        .expect("canonical bounds are plain inputs");
                    (x, y, c, input)
                })
                .collect(),
            eij_eqs: self
                .eq_table
                .iter_original()
                .filter(|&(x, y, _, _)| same_live_class(x, y))
                .map(|(x, y, c, s)| {
                    let input = self
                        .circuit
                        .input_index(s)
                        .expect("canonical equalities are plain inputs");
                    (x, y, c, input)
                })
                .collect(),
            bool_inputs: self
                .bool_inputs
                .iter()
                .map(|(&b, &s)| {
                    let input = self
                        .circuit
                        .input_index(s)
                        .expect("bool constants are plain inputs");
                    (b, input)
                })
                .collect(),
            p_vars: p_sorted,
            class_vars: analysis.classes.iter().map(|c| c.vars.clone()).collect(),
            class_methods: class_domain
                .iter()
                .map(|&d| self.domains[d].method)
                .collect(),
            max_abs_offset: off_cap,
        }
    }
}

struct ExtCtx<'a> {
    enc: &'a mut IncrementalEncoder,
    tm: &'a TermManager,
    analysis: &'a SepAnalysis,
    class_domain: &'a [usize],
    shift: u64,
    stride: u64,
}

impl ExtCtx<'_> {
    /// Encodes (or finds cached) the signal of a Boolean root.
    fn encode_root(&mut self, root: TermId) -> Signal {
        // Bottom-up over Boolean nodes; cached nodes short-circuit whole
        // cones, which is where incremental reuse happens.
        for id in self.tm.postorder(root) {
            if self.tm.sort(id) != Sort::Bool || self.enc.bool_sig.contains_key(&id) {
                continue;
            }
            let sig = match self.tm.term(id) {
                Term::True => Signal::TRUE,
                Term::False => Signal::FALSE,
                Term::Not(a) => !self.enc.bool_sig[a],
                Term::And(a, b) => {
                    let (x, y) = (self.enc.bool_sig[a], self.enc.bool_sig[b]);
                    self.enc.circuit.and(x, y)
                }
                Term::Or(a, b) => {
                    let (x, y) = (self.enc.bool_sig[a], self.enc.bool_sig[b]);
                    self.enc.circuit.or(x, y)
                }
                Term::Implies(a, b) => {
                    let (x, y) = (self.enc.bool_sig[a], self.enc.bool_sig[b]);
                    self.enc.circuit.implies(x, y)
                }
                Term::Iff(a, b) => {
                    let (x, y) = (self.enc.bool_sig[a], self.enc.bool_sig[b]);
                    self.enc.circuit.xnor(x, y)
                }
                Term::IteBool(c, t, e) => {
                    let (sc, st, se) = (
                        self.enc.bool_sig[c],
                        self.enc.bool_sig[t],
                        self.enc.bool_sig[e],
                    );
                    self.enc.circuit.mux(sc, st, se)
                }
                Term::BoolVar(b) => self.bool_var(*b),
                Term::Eq(a, b) => self.atom(AtomOp::Eq, *a, *b),
                Term::Lt(a, b) => self.atom(AtomOp::Lt, *a, *b),
                Term::PApp(..) => panic!("extend requires application-free formulas"),
                _ => unreachable!("integer node filtered above"),
            };
            self.enc.bool_sig.insert(id, sig);
        }
        self.enc.bool_sig[&root]
    }

    fn bool_var(&mut self, b: BoolSym) -> Signal {
        if let Some(&s) = self.enc.bool_inputs.get(&b) {
            return s;
        }
        let s = self.enc.circuit.input();
        self.enc.bool_inputs.insert(b, s);
        s
    }

    /// The domain hosting an atom: the committed domain of any of its
    /// `V_g` leaves.
    fn atom_domain(&self, lhs: TermId, rhs: TermId) -> Option<usize> {
        for side in [lhs, rhs] {
            for g in self.analysis.ground.leaves(side) {
                if let Some(c) = self.analysis.class_of(g.var) {
                    return Some(self.class_domain[c]);
                }
            }
        }
        None
    }

    fn atom(&mut self, op: AtomOp, lhs: TermId, rhs: TermId) -> Signal {
        match self.atom_domain(lhs, rhs) {
            // All-V_p atoms are decided structurally via path enumeration.
            None => self.atom_eij(op, lhs, rhs, false),
            Some(d) => match self.enc.domains[d].method {
                ClassMethod::Sd => self.atom_sd(op, lhs, rhs, d),
                ClassMethod::Eij => self.atom_eij(op, lhs, rhs, self.enc.domains[d].eq_only),
            },
        }
    }

    // ---- SD --------------------------------------------------------------

    fn atom_sd(&mut self, op: AtomOp, lhs: TermId, rhs: TermId, d: usize) -> Signal {
        let a = self.sd_bits(lhs, d);
        let b = self.sd_bits(rhs, d);
        match op {
            AtomOp::Eq => self.enc.circuit.eq_bits(&a, &b),
            AtomOp::Lt => self.enc.circuit.lt_bits(&a, &b),
        }
    }

    fn sd_bits(&mut self, t: TermId, d: usize) -> Vec<Signal> {
        if let Some(bits) = self.enc.sd_term_bits.get(&(t, d)) {
            return bits.clone();
        }
        let dom = self.enc.domains[d].clone();
        let out = match self.tm.term(t).clone() {
            Term::IntVar(v) => {
                if let Some(&pi) = self.enc.p_index.get(&v) {
                    let value = dom.p_base + (pi as u64 + 1) * self.stride + self.shift;
                    self.enc.circuit.const_bits(value, dom.width)
                } else {
                    let genuine = match self.enc.sd_var_bits.get(&v) {
                        Some(bits) => bits.clone(),
                        None => {
                            let bits: Vec<Signal> = (0..dom.var_bits)
                                .map(|_| self.enc.circuit.input())
                                .collect();
                            let idxs: Vec<u32> = bits
                                .iter()
                                .map(|&s| {
                                    self.enc
                                        .circuit
                                        .input_index(s)
                                        .expect("variable bits are inputs")
                                })
                                .collect();
                            self.enc.sd_var_bits.insert(v, bits.clone());
                            self.enc.sd_bit_inputs.insert(v, idxs);
                            bits
                        }
                    };
                    let mut bits = genuine;
                    bits.resize(dom.width, Signal::FALSE);
                    self.enc.circuit.add_const(&bits, self.shift as i64)
                }
            }
            Term::Succ(a) => {
                let bits = self.sd_bits(a, d);
                self.enc.circuit.add_const(&bits, 1)
            }
            Term::Pred(a) => {
                let bits = self.sd_bits(a, d);
                self.enc.circuit.add_const(&bits, -1)
            }
            Term::IteInt(c, th, el) => {
                let sc = self.enc.bool_sig[&c];
                let tb = self.sd_bits(th, d);
                let eb = self.sd_bits(el, d);
                self.enc.circuit.mux_bits(sc, &tb, &eb)
            }
            other => unreachable!("non-integer term in SD context: {other:?}"),
        };
        self.enc.sd_term_bits.insert((t, d), out.clone());
        out
    }

    // ---- EIJ -------------------------------------------------------------

    fn atom_eij(&mut self, op: AtomOp, lhs: TermId, rhs: TermId, eq_class: bool) -> Signal {
        let lp = self.eij_paths(lhs);
        let rp = self.eij_paths(rhs);
        let mut disjuncts = Vec::with_capacity(lp.len() * rp.len());
        for &(c1, g1) in lp.iter() {
            for &(c2, g2) in rp.iter() {
                let e = self.pred_signal(op, g1, g2, eq_class);
                if e == Signal::FALSE {
                    continue;
                }
                let cond = self.enc.circuit.and(c1, c2);
                let term = self.enc.circuit.and(cond, e);
                disjuncts.push(term);
            }
        }
        self.enc.circuit.or_many(&disjuncts)
    }

    fn eij_paths(&mut self, t: TermId) -> Vec<(Signal, GroundTerm)> {
        if let Some(p) = self.enc.paths.get(&t) {
            return p.clone();
        }
        let out: Vec<(Signal, GroundTerm)> = match self.tm.term(t).clone() {
            Term::IntVar(v) => vec![(Signal::TRUE, GroundTerm { var: v, offset: 0 })],
            Term::Succ(a) => self
                .eij_paths(a)
                .iter()
                .map(|&(c, g)| {
                    (
                        c,
                        GroundTerm {
                            var: g.var,
                            offset: g.offset + 1,
                        },
                    )
                })
                .collect(),
            Term::Pred(a) => self
                .eij_paths(a)
                .iter()
                .map(|&(c, g)| {
                    (
                        c,
                        GroundTerm {
                            var: g.var,
                            offset: g.offset - 1,
                        },
                    )
                })
                .collect(),
            Term::IteInt(c, th, el) => {
                let sc = self.enc.bool_sig[&c];
                let tp = self.eij_paths(th);
                let ep = self.eij_paths(el);
                let mut merged: HashMap<GroundTerm, Signal> = HashMap::new();
                for &(pc, g) in tp.iter() {
                    let cond = self.enc.circuit.and(sc, pc);
                    merge_path(&mut self.enc.circuit, &mut merged, g, cond);
                }
                for &(pc, g) in ep.iter() {
                    let cond = self.enc.circuit.and(!sc, pc);
                    merge_path(&mut self.enc.circuit, &mut merged, g, cond);
                }
                let mut v: Vec<(Signal, GroundTerm)> =
                    merged.into_iter().map(|(g, c)| (c, g)).collect();
                v.sort_by_key(|&(_, g)| g);
                v
            }
            other => unreachable!("non-integer term in EIJ context: {other:?}"),
        };
        self.enc.paths.insert(t, out.clone());
        out
    }

    /// The predicate signal for `g1 ⋈ g2` — same rules as the one-shot
    /// encoder (constants for same-variable pairs, `false` for
    /// `V_p`-involving equalities between distinct constants, canonical
    /// predicate variables otherwise).
    fn pred_signal(&mut self, op: AtomOp, g1: GroundTerm, g2: GroundTerm, eq_class: bool) -> Signal {
        if g1.var == g2.var {
            let truth = match op {
                AtomOp::Eq => g1.offset == g2.offset,
                AtomOp::Lt => g1.offset < g2.offset,
            };
            return if truth { Signal::TRUE } else { Signal::FALSE };
        }
        let p1 = self.enc.p_index.contains_key(&g1.var);
        let p2 = self.enc.p_index.contains_key(&g2.var);
        if p1 || p2 {
            match op {
                AtomOp::Eq => return Signal::FALSE,
                AtomOp::Lt => panic!(
                    "V_p constant under an inequality contradicts the \
                     positive-equality classification"
                ),
            }
        }
        match op {
            AtomOp::Eq if eq_class => self.enc.eq_table.equality(
                &mut self.enc.circuit,
                g1.var,
                g2.var,
                g2.offset - g1.offset,
            ),
            AtomOp::Eq => {
                let d = g2.offset - g1.offset;
                let le1 = self
                    .enc
                    .table
                    .bound(&mut self.enc.circuit, g1.var, g2.var, d);
                let le2 = self
                    .enc
                    .table
                    .bound(&mut self.enc.circuit, g2.var, g1.var, -d);
                self.enc.circuit.and(le1, le2)
            }
            AtomOp::Lt => self.enc.table.bound(
                &mut self.enc.circuit,
                g1.var,
                g2.var,
                g2.offset - g1.offset - 1,
            ),
        }
    }
}

fn merge_path(
    circuit: &mut Circuit,
    merged: &mut HashMap<GroundTerm, Signal>,
    g: GroundTerm,
    cond: Signal,
) {
    match merged.get(&g).copied() {
        Some(prev) => {
            let or = circuit.or(prev, cond);
            merged.insert(g, or);
        }
        None => {
            merged.insert(g, cond);
        }
    }
}

fn bits_for(values: u64) -> usize {
    // Number of bits to represent values in [0, values).
    (64 - (values.saturating_sub(1)).leading_zeros() as usize).max(1)
}
