//! Dependency-free deterministic pseudo-random number generation.
//!
//! The workspace runs in fully offline environments, so the benchmark
//! generators and the randomized tests cannot pull in external RNG crates.
//! This crate provides a single splitmix64-based generator with the small
//! API surface those uses need: seeding from a `u64`, uniform ranges over
//! the integer types, and Bernoulli draws.
//!
//! Determinism is part of the contract: a given seed must produce the same
//! stream on every platform and in every future version, because benchmark
//! identity (`sufsat-workloads`) depends on it. Do not change the stream.
//!
//! # Examples
//!
//! ```
//! use sufsat_prng::Prng;
//!
//! let mut rng = Prng::seed_from_u64(42);
//! let die = rng.random_range(1usize..7);
//! assert!((1..7).contains(&die));
//! let coin = rng.random_bool(0.5);
//! let _ = coin;
//! // Same seed, same stream.
//! let mut again = Prng::seed_from_u64(42);
//! assert_eq!(again.random_range(1usize..7), die);
//! ```

#![warn(missing_docs)]

use std::ops::Range;

/// A deterministic splitmix64 pseudo-random number generator.
///
/// Not cryptographically secure; statistical quality is ample for test-case
/// and benchmark generation (splitmix64 passes BigCrush).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Creates a generator from a 64-bit seed. Every seed, including 0,
    /// yields a full-quality stream.
    pub fn seed_from_u64(seed: u64) -> Prng {
        Prng { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        // splitmix64 (Steele, Lea, Flood 2014): a Weyl sequence scrambled
        // by two xor-shift-multiply rounds.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The next 8 raw bits.
    pub fn random_u8(&mut self) -> u8 {
        self.next_u64() as u8
    }

    /// A uniform draw from `range` (half-open, like `rand`'s
    /// `random_range`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn random_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        let lo = range.start.to_i128();
        let hi = range.end.to_i128();
        assert!(lo < hi, "random_range called with empty range");
        let span = (hi - lo) as u128;
        // Modulo bias is negligible for the small spans used here (and
        // irrelevant for test-case generation).
        let draw = (self.next_u64() as u128) % span;
        T::from_i128(lo + draw as i128)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    pub fn random_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // Compare against a 53-bit uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// A vector of `len` raw bytes (recipe fuel for randomized tests).
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.random_u8()).collect()
    }
}

/// Integer types [`Prng::random_range`] can draw uniformly.
pub trait UniformInt: Copy {
    /// Widens to `i128` (lossless for all implementors).
    fn to_i128(self) -> i128;
    /// Narrows from `i128`; callers guarantee the value fits.
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = Prng::seed_from_u64(7);
        let mut b = Prng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = Prng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.random_range(5usize..12);
            assert!((5..12).contains(&v));
            let w = rng.random_range(-3i64..4);
            assert!((-3..4).contains(&w));
            let b = rng.random_range(0u8..8);
            assert!(b < 8);
        }
    }

    #[test]
    fn all_range_values_are_reachable() {
        let mut rng = Prng::seed_from_u64(4);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.random_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Prng::seed_from_u64(5);
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
    }

    #[test]
    fn bernoulli_half_is_balanced() {
        let mut rng = Prng::seed_from_u64(6);
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Prng::seed_from_u64(0);
        let _ = rng.random_range(3usize..3);
    }
}
