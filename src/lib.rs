//! # sufsat
//!
//! A from-scratch Rust reproduction of *"A Hybrid SAT-Based Decision
//! Procedure for Separation Logic with Uninterpreted Functions"*
//! (Seshia, Lahiri, Bryant — DAC 2003).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`sat`] — a CDCL SAT solver (the zChaff stand-in)
//! * [`suf`] — SUF terms, parsing, polarity analysis, function elimination
//! * [`seplog`] — separation-logic analyses, difference logic, oracles
//! * [`encode`] — the SD, EIJ and HYBRID eager encodings
//! * [`core`] — the end-to-end decision procedure ([`decide`])
//! * [`baselines`] — lazy (CVC-style) and case-splitting (SVC-style)
//!   comparison procedures
//! * [`incremental`] — persistent solving sessions with push/pop,
//!   unsat cores and incremental bounded model checking
//! * [`serve`] — a resident solver daemon with a worker pool, bounded
//!   admission queue and deadline propagation (`sufsat serve`)
//! * [`workloads`] — the synthetic 49-benchmark suite
//!
//! The most common entry points are re-exported at the top level.
//!
//! # Quickstart
//!
//! ```
//! use sufsat::{decide, DecideOptions, TermManager};
//!
//! let mut tm = TermManager::new();
//! let f = tm.declare_fun("f", 1);
//! let x = tm.int_var("x");
//! let y = tm.int_var("y");
//! let fx = tm.mk_app(f, vec![x]);
//! let fy = tm.mk_app(f, vec![y]);
//! // Functional consistency: x = y  =>  f(x) = f(y).
//! let hyp = tm.mk_eq(x, y);
//! let conc = tm.mk_eq(fx, fy);
//! let phi = tm.mk_implies(hyp, conc);
//! let decision = decide(&mut tm, phi, &DecideOptions::default());
//! assert!(decision.outcome.is_valid());
//! ```

#![warn(missing_docs)]

pub use sufsat_baselines as baselines;
pub use sufsat_core as core;
pub use sufsat_encode as encode;
pub use sufsat_incremental as incremental;
pub use sufsat_sat as sat;
pub use sufsat_seplog as seplog;
pub use sufsat_serve as serve;
pub use sufsat_suf as suf;
pub use sufsat_workloads as workloads;

pub use sufsat_core::{
    check_bounded, decide, decide_many, decide_portfolio, select_threshold, BmcResult,
    Certificate, CnfMode, DecideOptions, DecideStats, Decision, EncodingMode, LaneReport,
    Outcome, PortfolioDecision, PortfolioOptions, StopReason, ThresholdSample, TransitionSystem,
    DEFAULT_SEP_THOLD,
};
pub use sufsat_suf::{
    parse_problem, print_problem, print_term, Sort, Term, TermId, TermManager, VarSym,
};
