//! `sufsat` — command-line decision procedure for SUF formulas.
//!
//! ```text
//! sufsat [OPTIONS] [FILE]
//!
//! Reads a problem in the s-expression format (from FILE or stdin):
//!     (vars x y) (funs (f 1))
//!     (formula (=> (= x y) (= (f x) (f y))))
//!
//! Options:
//!     --mode sd|eij|hybrid|fixed   encoding selection (default: hybrid)
//!     --septhold N                 hybrid threshold (default: 700)
//!     --cnf tseitin|pg             CNF conversion (default: tseitin)
//!     --timeout SECS               SAT wall-clock timeout
//!     --preprocess                 CNF preprocessing before SAT search
//!     --stats                      print the measurement block
//!     --counterexample             print the falsifying assignment
//!     --trace PATH|stderr          record a structured JSON-lines trace
//! Exit code: 0 valid, 1 invalid, 2 unknown/error.
//! ```
//!
//! `SUFSAT_TRACE=<path|stderr>` enables the same trace recording as
//! `--trace` (the flag wins when both are given).

use std::io::Read;
use std::process::ExitCode;
use std::time::Duration;

use sufsat::{decide, CnfMode, DecideOptions, EncodingMode, Outcome, TermManager};

fn main() -> ExitCode {
    let code = run();
    // Flush the trace (when one is being recorded) before the process
    // exits with the verdict code.
    sufsat_obs::emit_counter_records();
    sufsat_obs::shutdown();
    code
}

fn run() -> ExitCode {
    let mut mode = EncodingMode::Hybrid(sufsat::DEFAULT_SEP_THOLD);
    let mut septhold: Option<usize> = None;
    let mut cnf = CnfMode::Tseitin;
    let mut timeout: Option<Duration> = None;
    let mut preprocess = false;
    let mut show_stats = false;
    let mut show_cex = false;
    let mut trace: Option<String> = None;
    let mut file: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--mode" => {
                let v = args.next().unwrap_or_else(|| die("--mode needs a value"));
                mode = match v.as_str() {
                    "sd" => EncodingMode::Sd,
                    "eij" => EncodingMode::Eij,
                    "hybrid" => EncodingMode::Hybrid(sufsat::DEFAULT_SEP_THOLD),
                    "fixed" => EncodingMode::FixedHybrid,
                    other => die(&format!("unknown mode `{other}`")),
                };
            }
            "--septhold" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| die("--septhold needs a value"));
                septhold = Some(v.parse().unwrap_or_else(|_| die("bad --septhold")));
            }
            "--cnf" => {
                let v = args.next().unwrap_or_else(|| die("--cnf needs a value"));
                cnf = match v.as_str() {
                    "tseitin" => CnfMode::Tseitin,
                    "pg" => CnfMode::PlaistedGreenbaum,
                    other => die(&format!("unknown cnf mode `{other}`")),
                };
            }
            "--timeout" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| die("--timeout needs a value"));
                let secs: f64 = v.parse().unwrap_or_else(|_| die("bad --timeout"));
                timeout = Some(Duration::from_secs_f64(secs));
            }
            "--preprocess" => preprocess = true,
            "--stats" => show_stats = true,
            "--counterexample" => show_cex = true,
            "--trace" => {
                let v = args.next().unwrap_or_else(|| die("--trace needs a value"));
                trace = Some(v);
            }
            "--help" | "-h" => {
                println!("usage: sufsat [--mode sd|eij|hybrid|fixed] [--septhold N]");
                println!("              [--cnf tseitin|pg] [--timeout SECS] [--preprocess]");
                println!("              [--stats] [--counterexample] [--trace PATH|stderr] [FILE]");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => file = Some(other.to_owned()),
            other => die(&format!("unknown option `{other}`")),
        }
    }
    if let (EncodingMode::Hybrid(_), Some(t)) = (mode, septhold) {
        mode = EncodingMode::Hybrid(t);
    }

    match &trace {
        Some(target) => {
            if let Err(e) = sufsat_obs::init_to(target) {
                die(&format!("cannot open trace target {target}: {e}"));
            }
        }
        None => {
            sufsat_obs::init_from_env();
        }
    }

    let source = match &file {
        Some(path) => std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}"))),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .unwrap_or_else(|e| die(&format!("cannot read stdin: {e}")));
            buf
        }
    };

    let mut tm = TermManager::new();
    let phi = sufsat::parse_problem(&mut tm, &source).unwrap_or_else(|e| die(&e.to_string()));

    let options = DecideOptions {
        mode,
        cnf,
        timeout,
        preprocess,
        ..DecideOptions::default()
    };
    let decision = decide(&mut tm, phi, &options);

    if show_stats {
        let s = &decision.stats;
        eprintln!(
            "; nodes={} sep-preds={} classes={} (sd {}, eij {}) cnf-clauses={} \
             conflict-clauses={} translate={:.3}s sat={:.3}s",
            s.dag_size,
            s.sep_predicates,
            s.classes,
            s.sd_classes,
            s.eij_classes,
            s.cnf_clauses,
            s.conflict_clauses,
            s.translate_time.as_secs_f64(),
            s.sat_time.as_secs_f64(),
        );
    }

    match decision.outcome {
        Outcome::Valid => {
            println!("valid");
            ExitCode::SUCCESS
        }
        Outcome::Invalid(cex) => {
            println!("invalid");
            if show_cex {
                let mut entries: Vec<(String, String)> = cex
                    .ints
                    .iter()
                    .map(|(&v, &val)| (tm.int_var_name(v).to_owned(), val.to_string()))
                    .chain(
                        cex.bools
                            .iter()
                            .map(|(&b, &val)| (tm.bool_var_name(b).to_owned(), val.to_string())),
                    )
                    .collect();
                entries.sort();
                for (name, val) in entries {
                    println!("  {name} = {val}");
                }
            }
            ExitCode::from(1)
        }
        Outcome::Unknown(reason) => {
            println!("unknown ({reason:?})");
            ExitCode::from(2)
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("sufsat: {msg}");
    sufsat_obs::shutdown();
    std::process::exit(2);
}
