//! `sufsat` — command-line decision procedure for SUF formulas.
//!
//! ```text
//! sufsat [OPTIONS] [FILE]
//!
//! Reads a problem in the s-expression format (from FILE or stdin):
//!     (vars x y) (funs (f 1))
//!     (formula (=> (= x y) (= (f x) (f y))))
//!
//! Options:
//!     --mode sd|eij|hybrid|fixed   encoding selection (default: hybrid)
//!     --septhold N                 hybrid threshold (default: 700)
//!     --cnf tseitin|pg             CNF conversion (default: tseitin)
//!     --timeout SECS               SAT wall-clock timeout
//!     --preprocess                 CNF preprocessing before SAT search
//!     --stats                      print the measurement block
//!     --counterexample             print the falsifying assignment
//!     --trace PATH|stderr          record a structured JSON-lines trace
//! Exit code: 0 valid, 1 invalid, 2 unknown/error.
//! ```
//!
//! `SUFSAT_TRACE=<path|stderr>` enables the same trace recording as
//! `--trace` (the flag wins when both are given).
//!
//! Two subcommands wrap the resident daemon:
//!
//! ```text
//! sufsat serve [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!              [--default-timeout SECS] [--trace PATH|stderr]
//! sufsat client [--addr HOST:PORT] [--timeout SECS] (FILE | --stats | --shutdown)
//! ```
//!
//! `serve` runs until SIGTERM/SIGINT or a client `shutdown` request, then
//! drains gracefully. `client` sends one request to a running daemon.

use std::io::Read;
use std::process::ExitCode;
use std::time::Duration;

use sufsat::{decide, CnfMode, DecideOptions, EncodingMode, Outcome, TermManager};

fn main() -> ExitCode {
    let code = match std::env::args().nth(1).as_deref() {
        Some("serve") => run_serve(),
        Some("client") => run_client(),
        _ => run(),
    };
    // Flush the trace (when one is being recorded) before the process
    // exits with the verdict code.
    sufsat_obs::emit_counter_records();
    sufsat_obs::shutdown();
    code
}

fn run_serve() -> ExitCode {
    let mut addr = "127.0.0.1:7878".to_owned();
    let mut opts = sufsat::serve::ServeOptions::default();
    let mut trace: Option<String> = None;

    let mut args = std::env::args().skip(2);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| die(&format!("{name} needs a value")));
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--workers" => {
                opts.workers = value("--workers").parse().unwrap_or_else(|_| die("bad --workers"));
            }
            "--queue-cap" => {
                opts.queue_cap = value("--queue-cap").parse().unwrap_or_else(|_| die("bad --queue-cap"));
            }
            "--default-timeout" => {
                let secs: f64 = value("--default-timeout")
                    .parse()
                    .unwrap_or_else(|_| die("bad --default-timeout"));
                opts.default_deadline = Some(Duration::from_secs_f64(secs));
            }
            "--trace" => trace = Some(value("--trace")),
            "--help" | "-h" => {
                println!("usage: sufsat serve [--addr HOST:PORT] [--workers N] [--queue-cap N]");
                println!("                    [--default-timeout SECS] [--trace PATH|stderr]");
                return ExitCode::SUCCESS;
            }
            other => die(&format!("unknown option `{other}`")),
        }
    }
    init_trace(&trace);

    let handle = sufsat::serve::Server::bind(&*addr, opts)
        .unwrap_or_else(|e| die(&format!("cannot bind {addr}: {e}")));
    eprintln!("sufsat-serve: listening on {}", handle.local_addr());
    let term = sufsat::serve::termination_flag();
    let trigger = handle.trigger();
    // Drain on the first SIGTERM/SIGINT; a protocol `shutdown` request
    // drains too, which handle.wait() observes directly.
    let poller = std::thread::spawn(move || {
        while !trigger.draining() {
            if term.load(std::sync::atomic::Ordering::Relaxed) {
                eprintln!("sufsat-serve: termination signal, draining");
                trigger.begin();
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    });
    let report = handle.wait();
    let _ = poller.join();
    eprintln!(
        "sufsat-serve: stopped ({} requests, {} ok, {} overloaded, {} errors)",
        report.counters.requests, report.counters.ok, report.counters.overloaded,
        report.counters.errors,
    );
    ExitCode::SUCCESS
}

fn run_client() -> ExitCode {
    let mut addr = "127.0.0.1:7878".to_owned();
    let mut timeout: Option<Duration> = None;
    let mut want_stats = false;
    let mut want_shutdown = false;
    let mut file: Option<String> = None;

    let mut args = std::env::args().skip(2);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| die(&format!("{name} needs a value")));
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--timeout" => {
                let secs: f64 = value("--timeout").parse().unwrap_or_else(|_| die("bad --timeout"));
                timeout = Some(Duration::from_secs_f64(secs));
            }
            "--stats" => want_stats = true,
            "--shutdown" => want_shutdown = true,
            "--help" | "-h" => {
                println!("usage: sufsat client [--addr HOST:PORT] [--timeout SECS]");
                println!("                     (FILE | --stats | --shutdown)");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => file = Some(other.to_owned()),
            other => die(&format!("unknown option `{other}`")),
        }
    }

    let mut client = sufsat::serve::Client::connect(&*addr)
        .unwrap_or_else(|e| die(&format!("cannot connect to {addr}: {e}")));
    if want_stats {
        let reply = client.stats().unwrap_or_else(|e| die(&e.to_string()));
        println!("{}", sufsat::serve::render_json(&reply));
        return ExitCode::SUCCESS;
    }
    if want_shutdown {
        client.shutdown_server().unwrap_or_else(|e| die(&e.to_string()));
        println!("draining");
        return ExitCode::SUCCESS;
    }
    let source = match &file {
        Some(path) => std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}"))),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .unwrap_or_else(|e| die(&format!("cannot read stdin: {e}")));
            buf
        }
    };
    let reply = client
        .decide(&source, timeout)
        .unwrap_or_else(|e| die(&e.to_string()));
    match sufsat::serve::reply_status(&reply) {
        "ok" => {
            let verdict = sufsat::serve::reply_verdict(&reply);
            println!("{verdict}");
            match verdict {
                "valid" => ExitCode::SUCCESS,
                "invalid" => ExitCode::from(1),
                _ => ExitCode::from(2),
            }
        }
        status => {
            let detail = reply
                .get("message")
                .and_then(|m| m.as_str())
                .unwrap_or("");
            eprintln!("sufsat: server replied {status}: {detail}");
            ExitCode::from(2)
        }
    }
}

fn init_trace(trace: &Option<String>) {
    match trace {
        Some(target) => {
            if let Err(e) = sufsat_obs::init_to(target) {
                die(&format!("cannot open trace target {target}: {e}"));
            }
        }
        None => {
            sufsat_obs::init_from_env();
        }
    }
}

fn run() -> ExitCode {
    let mut mode = EncodingMode::Hybrid(sufsat::DEFAULT_SEP_THOLD);
    let mut septhold: Option<usize> = None;
    let mut cnf = CnfMode::Tseitin;
    let mut timeout: Option<Duration> = None;
    let mut preprocess = false;
    let mut show_stats = false;
    let mut show_cex = false;
    let mut trace: Option<String> = None;
    let mut file: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--mode" => {
                let v = args.next().unwrap_or_else(|| die("--mode needs a value"));
                mode = match v.as_str() {
                    "sd" => EncodingMode::Sd,
                    "eij" => EncodingMode::Eij,
                    "hybrid" => EncodingMode::Hybrid(sufsat::DEFAULT_SEP_THOLD),
                    "fixed" => EncodingMode::FixedHybrid,
                    other => die(&format!("unknown mode `{other}`")),
                };
            }
            "--septhold" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| die("--septhold needs a value"));
                septhold = Some(v.parse().unwrap_or_else(|_| die("bad --septhold")));
            }
            "--cnf" => {
                let v = args.next().unwrap_or_else(|| die("--cnf needs a value"));
                cnf = match v.as_str() {
                    "tseitin" => CnfMode::Tseitin,
                    "pg" => CnfMode::PlaistedGreenbaum,
                    other => die(&format!("unknown cnf mode `{other}`")),
                };
            }
            "--timeout" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| die("--timeout needs a value"));
                let secs: f64 = v.parse().unwrap_or_else(|_| die("bad --timeout"));
                timeout = Some(Duration::from_secs_f64(secs));
            }
            "--preprocess" => preprocess = true,
            "--stats" => show_stats = true,
            "--counterexample" => show_cex = true,
            "--trace" => {
                let v = args.next().unwrap_or_else(|| die("--trace needs a value"));
                trace = Some(v);
            }
            "--help" | "-h" => {
                println!("usage: sufsat [--mode sd|eij|hybrid|fixed] [--septhold N]");
                println!("              [--cnf tseitin|pg] [--timeout SECS] [--preprocess]");
                println!("              [--stats] [--counterexample] [--trace PATH|stderr] [FILE]");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => file = Some(other.to_owned()),
            other => die(&format!("unknown option `{other}`")),
        }
    }
    if let (EncodingMode::Hybrid(_), Some(t)) = (mode, septhold) {
        mode = EncodingMode::Hybrid(t);
    }

    init_trace(&trace);

    let source = match &file {
        Some(path) => std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}"))),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .unwrap_or_else(|e| die(&format!("cannot read stdin: {e}")));
            buf
        }
    };

    let mut tm = TermManager::new();
    let phi = sufsat::parse_problem(&mut tm, &source).unwrap_or_else(|e| die(&e.to_string()));

    let options = DecideOptions {
        mode,
        cnf,
        timeout,
        preprocess,
        ..DecideOptions::default()
    };
    let decision = decide(&mut tm, phi, &options);

    if show_stats {
        let s = &decision.stats;
        eprintln!(
            "; nodes={} sep-preds={} classes={} (sd {}, eij {}) cnf-clauses={} \
             conflict-clauses={} translate={:.3}s sat={:.3}s",
            s.dag_size,
            s.sep_predicates,
            s.classes,
            s.sd_classes,
            s.eij_classes,
            s.cnf_clauses,
            s.conflict_clauses,
            s.translate_time.as_secs_f64(),
            s.sat_time.as_secs_f64(),
        );
    }

    match decision.outcome {
        Outcome::Valid => {
            println!("valid");
            ExitCode::SUCCESS
        }
        Outcome::Invalid(cex) => {
            println!("invalid");
            if show_cex {
                let mut entries: Vec<(String, String)> = cex
                    .ints
                    .iter()
                    .map(|(&v, &val)| (tm.int_var_name(v).to_owned(), val.to_string()))
                    .chain(
                        cex.bools
                            .iter()
                            .map(|(&b, &val)| (tm.bool_var_name(b).to_owned(), val.to_string())),
                    )
                    .collect();
                entries.sort();
                for (name, val) in entries {
                    println!("  {name} = {val}");
                }
            }
            ExitCode::from(1)
        }
        Outcome::Unknown(reason) => {
            println!("unknown ({reason:?})");
            ExitCode::from(2)
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("sufsat: {msg}");
    sufsat_obs::shutdown();
    std::process::exit(2);
}
