//! `sufsat` — command-line decision procedure for SUF formulas.
//!
//! ```text
//! sufsat [OPTIONS] [FILE]
//!
//! Reads a problem in the s-expression format (from FILE or stdin):
//!     (vars x y) (funs (f 1))
//!     (formula (=> (= x y) (= (f x) (f y))))
//!
//! Options:
//!     --mode sd|eij|hybrid|fixed   encoding selection (default: hybrid)
//!     --septhold N                 hybrid threshold (default: 700)
//!     --cnf tseitin|pg             CNF conversion (default: tseitin)
//!     --timeout SECS               SAT wall-clock timeout
//!     --preprocess                 CNF preprocessing before SAT search
//!     --stats                      print the measurement block
//!     --counterexample             print the falsifying assignment
//!     --trace PATH|stderr          record a structured JSON-lines trace
//! Exit code: 0 valid, 1 invalid, 2 unknown/error.
//! ```
//!
//! `SUFSAT_TRACE=<path|stderr>` enables the same trace recording as
//! `--trace` (the flag wins when both are given).
//!
//! Four subcommands wrap the resident daemon and its result cache:
//!
//! ```text
//! sufsat serve [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!              [--default-timeout SECS] [--trace PATH|stderr]
//!              [--metrics-addr HOST:PORT] [--cache-bytes N]
//!              [--cache-path PATH] [--no-cache]
//! sufsat client [--addr HOST:PORT] [--timeout SECS] (FILE | --stats | --shutdown)
//! sufsat top [--addr HOST:PORT] [--interval SECS] [--iterations N] [--once]
//! sufsat cache (inspect | compact) PATH [--entries]
//! ```
//!
//! `serve` runs until SIGTERM/SIGINT or a client `shutdown` request, then
//! drains gracefully; `--metrics-addr` additionally exposes Prometheus
//! text on plain HTTP (`GET /metrics`) and a JSON health probe
//! (`GET /health`); `--cache-path` persists the result cache across
//! restarts. `client` sends one request to a running daemon.
//! `top` polls a daemon's `metrics` op and renders a refreshing
//! terminal dashboard: throughput, overload rate, latency quantiles,
//! result-cache state and per-worker solver progress. `cache` is the
//! offline tool for a persistent cache log: `inspect` summarizes (and
//! with `--entries` lists) its records, `compact` rewrites it keeping
//! one record per fingerprint.

use std::io::Read;
use std::process::ExitCode;
use std::time::Duration;

use sufsat::{decide, CnfMode, DecideOptions, EncodingMode, Outcome, TermManager};

fn main() -> ExitCode {
    let code = match std::env::args().nth(1).as_deref() {
        Some("serve") => run_serve(),
        Some("client") => run_client(),
        Some("top") => run_top(),
        Some("cache") => run_cache(),
        _ => run(),
    };
    // Flush the trace (when one is being recorded) before the process
    // exits with the verdict code.
    sufsat_obs::emit_counter_records();
    sufsat_obs::shutdown();
    code
}

fn run_serve() -> ExitCode {
    let mut addr = "127.0.0.1:7878".to_owned();
    let mut opts = sufsat::serve::ServeOptions::default();
    let mut trace: Option<String> = None;

    let mut args = std::env::args().skip(2);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| die(&format!("{name} needs a value")));
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--workers" => {
                opts.workers = value("--workers").parse().unwrap_or_else(|_| die("bad --workers"));
            }
            "--queue-cap" => {
                opts.queue_cap = value("--queue-cap").parse().unwrap_or_else(|_| die("bad --queue-cap"));
            }
            "--default-timeout" => {
                let secs: f64 = value("--default-timeout")
                    .parse()
                    .unwrap_or_else(|_| die("bad --default-timeout"));
                opts.default_deadline = Some(Duration::from_secs_f64(secs));
            }
            "--trace" => trace = Some(value("--trace")),
            "--metrics-addr" => opts.metrics_addr = Some(value("--metrics-addr")),
            "--cache-bytes" => {
                opts.cache_bytes = value("--cache-bytes")
                    .parse()
                    .unwrap_or_else(|_| die("bad --cache-bytes"));
            }
            "--cache-path" => {
                opts.cache_path = Some(std::path::PathBuf::from(value("--cache-path")));
            }
            "--no-cache" => opts.cache_bytes = 0,
            "--help" | "-h" => {
                println!("usage: sufsat serve [--addr HOST:PORT] [--workers N] [--queue-cap N]");
                println!("                    [--default-timeout SECS] [--trace PATH|stderr]");
                println!("                    [--metrics-addr HOST:PORT] [--cache-bytes N]");
                println!("                    [--cache-path PATH] [--no-cache]");
                return ExitCode::SUCCESS;
            }
            other => die(&format!("unknown option `{other}`")),
        }
    }
    init_trace(&trace);

    let handle = sufsat::serve::Server::bind(&*addr, opts)
        .unwrap_or_else(|e| die(&format!("cannot bind {addr}: {e}")));
    eprintln!("sufsat-serve: listening on {}", handle.local_addr());
    if let Some(metrics) = handle.metrics_addr() {
        eprintln!("sufsat-serve: Prometheus exposition on http://{metrics}/metrics");
    }
    let term = sufsat::serve::termination_flag();
    let trigger = handle.trigger();
    // Drain on the first SIGTERM/SIGINT; a protocol `shutdown` request
    // drains too, which handle.wait() observes directly.
    let poller = std::thread::spawn(move || {
        while !trigger.draining() {
            if term.load(std::sync::atomic::Ordering::Relaxed) {
                eprintln!("sufsat-serve: termination signal, draining");
                trigger.begin();
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    });
    let report = handle.wait();
    let _ = poller.join();
    eprintln!(
        "sufsat-serve: stopped ({} requests, {} ok, {} overloaded, {} errors)",
        report.counters.requests, report.counters.ok, report.counters.overloaded,
        report.counters.errors,
    );
    ExitCode::SUCCESS
}

fn run_client() -> ExitCode {
    let mut addr = "127.0.0.1:7878".to_owned();
    let mut timeout: Option<Duration> = None;
    let mut want_stats = false;
    let mut want_shutdown = false;
    let mut file: Option<String> = None;

    let mut args = std::env::args().skip(2);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| die(&format!("{name} needs a value")));
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--timeout" => {
                let secs: f64 = value("--timeout").parse().unwrap_or_else(|_| die("bad --timeout"));
                timeout = Some(Duration::from_secs_f64(secs));
            }
            "--stats" => want_stats = true,
            "--shutdown" => want_shutdown = true,
            "--help" | "-h" => {
                println!("usage: sufsat client [--addr HOST:PORT] [--timeout SECS]");
                println!("                     (FILE | --stats | --shutdown)");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => file = Some(other.to_owned()),
            other => die(&format!("unknown option `{other}`")),
        }
    }

    let mut client = sufsat::serve::Client::connect(&*addr)
        .unwrap_or_else(|e| die(&format!("cannot connect to {addr}: {e}")));
    if want_stats {
        let reply = client.stats().unwrap_or_else(|e| die(&e.to_string()));
        println!("{}", sufsat::serve::render_json(&reply));
        return ExitCode::SUCCESS;
    }
    if want_shutdown {
        client.shutdown_server().unwrap_or_else(|e| die(&e.to_string()));
        println!("draining");
        return ExitCode::SUCCESS;
    }
    let source = match &file {
        Some(path) => std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}"))),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .unwrap_or_else(|e| die(&format!("cannot read stdin: {e}")));
            buf
        }
    };
    let reply = client
        .decide(&source, timeout)
        .unwrap_or_else(|e| die(&e.to_string()));
    match sufsat::serve::reply_status(&reply) {
        "ok" => {
            let verdict = sufsat::serve::reply_verdict(&reply);
            println!("{verdict}");
            match verdict {
                "valid" => ExitCode::SUCCESS,
                "invalid" => ExitCode::from(1),
                _ => ExitCode::from(2),
            }
        }
        status => {
            let detail = reply
                .get("message")
                .and_then(|m| m.as_str())
                .unwrap_or("");
            eprintln!("sufsat: server replied {status}: {detail}");
            ExitCode::from(2)
        }
    }
}

/// `sufsat top` — a refreshing terminal dashboard over a daemon's
/// `metrics` op: throughput, overload rate, latency quantiles and
/// per-worker solver progress.
fn run_top() -> ExitCode {
    use sufsat_obs::json::Json;

    let mut addr = "127.0.0.1:7878".to_owned();
    let mut interval = Duration::from_secs(2);
    let mut iterations: Option<u64> = None;

    let mut args = std::env::args().skip(2);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| die(&format!("{name} needs a value")));
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--interval" => {
                let secs: f64 = value("--interval").parse().unwrap_or_else(|_| die("bad --interval"));
                interval = Duration::from_secs_f64(secs);
            }
            "--iterations" => {
                iterations = Some(value("--iterations").parse().unwrap_or_else(|_| die("bad --iterations")));
            }
            "--once" => iterations = Some(1),
            "--help" | "-h" => {
                println!("usage: sufsat top [--addr HOST:PORT] [--interval SECS]");
                println!("                  [--iterations N] [--once]");
                return ExitCode::SUCCESS;
            }
            other => die(&format!("unknown option `{other}`")),
        }
    }
    let once = iterations == Some(1);

    let u64_of = |v: Option<&Json>| v.and_then(Json::as_u64).unwrap_or(0);
    let quantiles = |obj: Option<&Json>| -> (u64, u64, u64, u64, u64) {
        match obj {
            Some(o) => (
                u64_of(o.get("count")),
                u64_of(o.get("p50")),
                u64_of(o.get("p95")),
                u64_of(o.get("p99")),
                u64_of(o.get("max")),
            ),
            None => (0, 0, 0, 0, 0),
        }
    };
    let ms = |us: u64| us as f64 / 1000.0;

    // Previous poll's (instant, requests, overloaded) for rate deltas.
    let mut prev: Option<(std::time::Instant, u64, u64)> = None;
    let mut round = 0u64;
    loop {
        let metrics = sufsat::serve::Client::connect(&*addr)
            .map_err(|e| e.to_string())
            .and_then(|mut c| {
                c.set_read_timeout(Some(Duration::from_secs(5))).ok();
                c.metrics().map_err(|e| e.to_string())
            });
        let metrics = match metrics {
            Ok(m) => m,
            Err(e) => {
                eprintln!("sufsat top: {addr}: {e}");
                return ExitCode::from(2);
            }
        };
        let now = std::time::Instant::now();
        let counters = metrics.get("counters");
        let requests = u64_of(counters.and_then(|c| c.get("requests")));
        let overloaded = u64_of(counters.and_then(|c| c.get("overloaded")));
        let (rps, overload_rate) = match prev {
            Some((t0, req0, over0)) if now > t0 => {
                let dt = now.duration_since(t0).as_secs_f64();
                let dreq = requests.saturating_sub(req0);
                let dover = overloaded.saturating_sub(over0);
                (
                    dreq as f64 / dt,
                    if dreq > 0 { dover as f64 / dreq as f64 } else { 0.0 },
                )
            }
            _ => (0.0, 0.0),
        };
        prev = Some((now, requests, overloaded));

        let mut screen = String::new();
        if !once {
            screen.push_str("\x1b[2J\x1b[H");
        }
        let state = metrics.get("state").and_then(Json::as_str).unwrap_or("?");
        let uptime_s = u64_of(metrics.get("uptime_us")) / 1_000_000;
        screen.push_str(&format!(
            "sufsat top — {addr}  [{state}]  up {uptime_s}s\n\n"
        ));
        screen.push_str(&format!(
            "  requests {requests}  ok {}  errors {}  overloaded {}  |  {rps:.1} req/s, {:.1}% overloaded\n",
            u64_of(counters.and_then(|c| c.get("ok"))),
            u64_of(counters.and_then(|c| c.get("errors"))),
            overloaded,
            overload_rate * 100.0,
        ));
        screen.push_str(&format!(
            "  queue {}  inflight {}  sessions {}  connections {}\n\n",
            u64_of(metrics.get("queue_depth")),
            u64_of(metrics.get("inflight")),
            u64_of(metrics.get("open_sessions")),
            u64_of(metrics.get("connections")),
        ));
        for (label, key) in [
            ("latency  (all)", "latency_us"),
            ("latency  (10s)", "window_latency_us"),
            ("queue-wait    ", "queue_wait_us"),
        ] {
            let (count, p50, p95, p99, max) = quantiles(metrics.get(key));
            screen.push_str(&format!(
                "  {label}  n={count:<8} p50 {:>9.2} ms  p95 {:>9.2} ms  p99 {:>9.2} ms  max {:>9.2} ms\n",
                ms(p50), ms(p95), ms(p99), ms(max),
            ));
        }
        if let Some(cache) = metrics.get("cache") {
            if cache.get("enabled").and_then(Json::as_bool) == Some(true) {
                let hits = u64_of(cache.get("hits"));
                let misses = u64_of(cache.get("misses"));
                let coalesced = u64_of(cache.get("coalesced"));
                let lookups = hits + misses;
                let rate = if lookups > 0 {
                    hits as f64 / lookups as f64 * 100.0
                } else {
                    0.0
                };
                screen.push_str(&format!(
                    "\n  cache  {rate:.1}% hit ({hits} hits, {misses} misses, {coalesced} coalesced)  entries {}  {} KiB  evictions {}  hit p50 {:.2} ms\n",
                    u64_of(cache.get("entries")),
                    u64_of(cache.get("bytes")) / 1024,
                    u64_of(cache.get("evictions")),
                    ms(u64_of(cache.get("hit_latency_us").and_then(|h| h.get("p50")))),
                ));
            }
        }
        screen.push_str("\n  worker  state  conflicts  confl/s  trail  learnts  arena\n");
        if let Some(Json::Arr(workers)) = metrics.get("workers") {
            for (i, w) in workers.iter().enumerate() {
                let state = w.get("state").and_then(Json::as_str).unwrap_or("?");
                screen.push_str(&format!(
                    "  {i:>6}  {state:<5}  {:>9}  {:>7}  {:>5}  {:>7}  {:>6} KiB\n",
                    u64_of(w.get("conflicts")),
                    u64_of(w.get("conflicts_per_s")),
                    u64_of(w.get("trail_depth")),
                    u64_of(w.get("learnt_clauses")),
                    u64_of(w.get("arena_bytes")) / 1024,
                ));
            }
        }
        print!("{screen}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();

        round += 1;
        if iterations.is_some_and(|n| round >= n) {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(interval);
    }
}

/// `sufsat cache` — offline tooling for a persistent cache log.
fn run_cache() -> ExitCode {
    let mut args = std::env::args().skip(2);
    let usage = || {
        println!("usage: sufsat cache inspect PATH [--entries]");
        println!("       sufsat cache compact PATH");
    };
    let sub = match args.next() {
        Some(s) => s,
        None => {
            usage();
            return ExitCode::from(2);
        }
    };
    if sub == "--help" || sub == "-h" {
        usage();
        return ExitCode::SUCCESS;
    }
    let mut path: Option<std::path::PathBuf> = None;
    let mut entries = false;
    for arg in args {
        match arg.as_str() {
            "--entries" => entries = true,
            other if !other.starts_with('-') => path = Some(std::path::PathBuf::from(other)),
            other => die(&format!("unknown option `{other}`")),
        }
    }
    let path = path.unwrap_or_else(|| die(&format!("cache {sub} needs a log path")));
    match sub.as_str() {
        "inspect" => {
            let (records, report) = sufsat_cache::scan(&path)
                .unwrap_or_else(|e| die(&format!("cannot read {}: {e}", path.display())));
            println!(
                "{}: {} bytes, {} records ({} live after last-wins dedup), {} torn-tail bytes dropped",
                path.display(),
                report.file_bytes,
                report.records,
                report.unique,
                report.truncated_bytes,
            );
            if entries {
                for r in &records {
                    println!(
                        "  {}  {:<8} canon {} B  solve {} us",
                        r.fingerprint.to_hex(),
                        r.value.verdict.name(),
                        r.canon.len(),
                        r.value.digest.solve_time_us,
                    );
                }
            }
            ExitCode::SUCCESS
        }
        "compact" => {
            let (records, report) = sufsat_cache::scan(&path)
                .unwrap_or_else(|e| die(&format!("cannot read {}: {e}", path.display())));
            let (mut log, _, _) = sufsat_cache::CacheLog::open(&path)
                .unwrap_or_else(|e| die(&format!("cannot open {}: {e}", path.display())));
            let new_size = log
                .compact(&records)
                .unwrap_or_else(|e| die(&format!("compaction failed: {e}")));
            println!(
                "{}: {} -> {} bytes ({} records kept of {})",
                path.display(),
                report.file_bytes,
                new_size,
                records.len(),
                report.records,
            );
            ExitCode::SUCCESS
        }
        other => die(&format!("unknown cache subcommand `{other}`")),
    }
}

fn init_trace(trace: &Option<String>) {
    match trace {
        Some(target) => {
            if let Err(e) = sufsat_obs::init_to(target) {
                die(&format!("cannot open trace target {target}: {e}"));
            }
        }
        None => {
            sufsat_obs::init_from_env();
        }
    }
}

fn run() -> ExitCode {
    let mut mode = EncodingMode::Hybrid(sufsat::DEFAULT_SEP_THOLD);
    let mut septhold: Option<usize> = None;
    let mut cnf = CnfMode::Tseitin;
    let mut timeout: Option<Duration> = None;
    let mut preprocess = false;
    let mut show_stats = false;
    let mut show_cex = false;
    let mut trace: Option<String> = None;
    let mut file: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--mode" => {
                let v = args.next().unwrap_or_else(|| die("--mode needs a value"));
                mode = match v.as_str() {
                    "sd" => EncodingMode::Sd,
                    "eij" => EncodingMode::Eij,
                    "hybrid" => EncodingMode::Hybrid(sufsat::DEFAULT_SEP_THOLD),
                    "fixed" => EncodingMode::FixedHybrid,
                    other => die(&format!("unknown mode `{other}`")),
                };
            }
            "--septhold" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| die("--septhold needs a value"));
                septhold = Some(v.parse().unwrap_or_else(|_| die("bad --septhold")));
            }
            "--cnf" => {
                let v = args.next().unwrap_or_else(|| die("--cnf needs a value"));
                cnf = match v.as_str() {
                    "tseitin" => CnfMode::Tseitin,
                    "pg" => CnfMode::PlaistedGreenbaum,
                    other => die(&format!("unknown cnf mode `{other}`")),
                };
            }
            "--timeout" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| die("--timeout needs a value"));
                let secs: f64 = v.parse().unwrap_or_else(|_| die("bad --timeout"));
                timeout = Some(Duration::from_secs_f64(secs));
            }
            "--preprocess" => preprocess = true,
            "--stats" => show_stats = true,
            "--counterexample" => show_cex = true,
            "--trace" => {
                let v = args.next().unwrap_or_else(|| die("--trace needs a value"));
                trace = Some(v);
            }
            "--help" | "-h" => {
                println!("usage: sufsat [--mode sd|eij|hybrid|fixed] [--septhold N]");
                println!("              [--cnf tseitin|pg] [--timeout SECS] [--preprocess]");
                println!("              [--stats] [--counterexample] [--trace PATH|stderr] [FILE]");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => file = Some(other.to_owned()),
            other => die(&format!("unknown option `{other}`")),
        }
    }
    if let (EncodingMode::Hybrid(_), Some(t)) = (mode, septhold) {
        mode = EncodingMode::Hybrid(t);
    }

    init_trace(&trace);

    let source = match &file {
        Some(path) => std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}"))),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .unwrap_or_else(|e| die(&format!("cannot read stdin: {e}")));
            buf
        }
    };

    let mut tm = TermManager::new();
    let phi = sufsat::parse_problem(&mut tm, &source).unwrap_or_else(|e| die(&e.to_string()));

    let options = DecideOptions {
        mode,
        cnf,
        timeout,
        preprocess,
        ..DecideOptions::default()
    };
    let decision = decide(&mut tm, phi, &options);

    if show_stats {
        let s = &decision.stats;
        eprintln!(
            "; nodes={} sep-preds={} classes={} (sd {}, eij {}) cnf-clauses={} \
             conflict-clauses={} translate={:.3}s sat={:.3}s",
            s.dag_size,
            s.sep_predicates,
            s.classes,
            s.sd_classes,
            s.eij_classes,
            s.cnf_clauses,
            s.conflict_clauses,
            s.translate_time.as_secs_f64(),
            s.sat_time.as_secs_f64(),
        );
    }

    match decision.outcome {
        Outcome::Valid => {
            println!("valid");
            ExitCode::SUCCESS
        }
        Outcome::Invalid(cex) => {
            println!("invalid");
            if show_cex {
                let mut entries: Vec<(String, String)> = cex
                    .ints
                    .iter()
                    .map(|(&v, &val)| (tm.int_var_name(v).to_owned(), val.to_string()))
                    .chain(
                        cex.bools
                            .iter()
                            .map(|(&b, &val)| (tm.bool_var_name(b).to_owned(), val.to_string())),
                    )
                    .collect();
                entries.sort();
                for (name, val) in entries {
                    println!("  {name} = {val}");
                }
            }
            ExitCode::from(1)
        }
        Outcome::Unknown(reason) => {
            println!("unknown ({reason:?})");
            ExitCode::from(2)
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("sufsat: {msg}");
    sufsat_obs::shutdown();
    std::process::exit(2);
}
