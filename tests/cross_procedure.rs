//! Cross-procedure agreement: every decision procedure in the workspace —
//! the four eager modes, the lazy CVC-style baseline and the SVC-style
//! case splitter — must agree on validity, and all counterexamples must
//! actually falsify the formula.

use std::collections::HashSet;
use std::time::Duration;
use sufsat_prng::Prng;
use sufsat::baselines::{decide_lazy, decide_svc, LazyOptions, SvcOptions};
use sufsat::seplog::{brute_force_validity, OracleResult, SepAnalysis};
use sufsat::workloads::Benchmark;
use sufsat::{decide, Certificate, DecideOptions, EncodingMode, Outcome, TermId, TermManager};

fn eager_modes() -> Vec<EncodingMode> {
    vec![
        EncodingMode::Sd,
        EncodingMode::Eij,
        EncodingMode::Hybrid(0),
        EncodingMode::Hybrid(3),
        EncodingMode::Hybrid(700),
        EncodingMode::FixedHybrid,
    ]
}

/// Decides with every procedure and asserts agreement; returns the verdict.
fn decide_all_ways(tm: &mut TermManager, phi: TermId) -> bool {
    let mut verdicts: Vec<(String, bool)> = Vec::new();
    for mode in eager_modes() {
        let d = decide(tm, phi, &DecideOptions::with_mode(mode));
        match d.outcome {
            Outcome::Valid => verdicts.push((format!("{mode:?}"), true)),
            Outcome::Invalid(_) => verdicts.push((format!("{mode:?}"), false)),
            Outcome::Unknown(r) => panic!("{mode:?} gave up: {r:?}"),
        }
    }
    let (lazy, _) = decide_lazy(tm, phi, &LazyOptions::default());
    verdicts.push(("lazy".into(), lazy.is_valid()));
    let (svc, _) = decide_svc(tm, phi, &SvcOptions::default());
    verdicts.push(("svc".into(), svc.is_valid()));

    let first = verdicts[0].1;
    for (name, v) in &verdicts {
        assert_eq!(*v, first, "{name} disagrees: {verdicts:?}");
    }
    first
}

#[test]
fn agreement_on_paper_background_example() {
    // The paper's running example: x >= y ∧ y >= z ∧ z >= succ(x) is
    // unsatisfiable, so its negation is valid.
    let mut tm = TermManager::new();
    let phi = sufsat::parse_problem(
        &mut tm,
        "(vars x y z)
         (formula (not (and (>= x y) (>= y z) (>= z (succ x)))))",
    )
    .expect("parses");
    assert!(decide_all_ways(&mut tm, phi));
}

#[test]
fn agreement_on_uf_formulas() {
    let cases = [
        // Valid: congruence through two levels.
        (
            "(vars x y) (funs (f 1) (g 1))
             (formula (=> (= x y) (= (g (f x)) (g (f y)))))",
            true,
        ),
        // Invalid: injectivity may not be assumed.
        (
            "(vars x y) (funs (f 1))
             (formula (=> (= (f x) (f y)) (= x y)))",
            false,
        ),
        // Valid: ITE distributes over function application semantics.
        (
            "(vars x y) (bvars c) (funs (f 1))
             (formula (= (f (ite c x y)) (ite c (f x) (f y))))",
            true,
        ),
        // Valid: predicate congruence.
        (
            "(vars x y) (preds (p 1))
             (formula (=> (= x y) (iff (p x) (p y))))",
            true,
        ),
        // Invalid: predicates are not constant.
        (
            "(vars x y) (preds (p 1)) (formula (iff (p x) (p y)))",
            false,
        ),
        // Valid: arithmetic over orderings.
        (
            "(vars a b c)
             (formula (=> (and (< a b) (< b c)) (< (succ a) (succ c))))",
            true,
        ),
        // Invalid: off-by-one.
        ("(vars a b) (formula (=> (< a (succ b)) (< a b)))", false),
    ];
    for (text, expected) in cases {
        let mut tm = TermManager::new();
        let phi = sufsat::parse_problem(&mut tm, text).expect("parses");
        assert_eq!(decide_all_ways(&mut tm, phi), expected, "{text}");
    }
}

#[test]
fn counterexamples_falsify_after_elimination() {
    let mut tm = TermManager::new();
    let phi = sufsat::parse_problem(&mut tm, "(vars x y) (funs (f 1)) (formula (< (f x) (f y)))")
        .expect("parses");
    for mode in eager_modes() {
        let d = decide(&mut tm, phi, &DecideOptions::with_mode(mode));
        let Outcome::Invalid(cex) = d.outcome else {
            panic!("{mode:?} must find the formula invalid");
        };
        // The counterexample speaks about the eliminated formula.
        let elim = sufsat::suf::eliminate(&mut tm, phi);
        assert!(!cex.evaluate(&tm, elim.formula), "{mode:?}");
    }
}

/// Random separation formulas (no UFs) against the exhaustive oracle.
fn build_random_sep(tm: &mut TermManager, recipe: &[(u8, u8, u8)], n_vars: usize) -> TermId {
    let vars: Vec<TermId> = (0..n_vars).map(|i| tm.int_var(&format!("x{i}"))).collect();
    let mut ints: Vec<TermId> = vars;
    let mut bools: Vec<TermId> = Vec::new();
    for &(op, i, j) in recipe {
        let (i, j) = (i as usize, j as usize);
        match op % 7 {
            0 => {
                let (a, b) = (ints[i % ints.len()], ints[j % ints.len()]);
                let t = tm.mk_eq(a, b);
                bools.push(t);
            }
            1 => {
                let (a, b) = (ints[i % ints.len()], ints[j % ints.len()]);
                let t = tm.mk_lt(a, b);
                bools.push(t);
            }
            2 if !bools.is_empty() => {
                let a = bools[i % bools.len()];
                let t = tm.mk_not(a);
                bools.push(t);
            }
            3 if bools.len() >= 2 => {
                let (a, b) = (bools[i % bools.len()], bools[j % bools.len()]);
                let t = tm.mk_and(a, b);
                bools.push(t);
            }
            4 if bools.len() >= 2 => {
                let (a, b) = (bools[i % bools.len()], bools[j % bools.len()]);
                let t = tm.mk_or(a, b);
                bools.push(t);
            }
            5 => {
                let a = ints[i % ints.len()];
                let t = if j % 2 == 0 {
                    tm.mk_succ(a)
                } else {
                    tm.mk_pred(a)
                };
                ints.push(t);
            }
            _ if !bools.is_empty() => {
                let c = bools[i % bools.len()];
                let (a, b) = (ints[i % ints.len()], ints[j % ints.len()]);
                let t = tm.mk_ite_int(c, a, b);
                ints.push(t);
            }
            _ => {}
        }
    }
    bools.last().copied().unwrap_or_else(|| tm.mk_true())
}

/// Random SUF formulas *with* uninterpreted functions: no exhaustive oracle
/// exists, but the seven procedures take very different paths (eager
/// SD bit vectors, eager EIJ transitivity, lazy refinement, case
/// splitting), so mutual agreement is a strong end-to-end check.
fn build_random_suf(tm: &mut TermManager, recipe: &[(u8, u8, u8)], n_vars: usize) -> TermId {
    let f = tm.declare_fun("f", 1);
    let g = tm.declare_fun("g", 2);
    let vars: Vec<TermId> = (0..n_vars).map(|i| tm.int_var(&format!("x{i}"))).collect();
    let mut ints: Vec<TermId> = vars;
    let mut bools: Vec<TermId> = Vec::new();
    for &(op, i, j) in recipe {
        let (i, j) = (i as usize, j as usize);
        match op % 9 {
            0 => {
                let (a, b) = (ints[i % ints.len()], ints[j % ints.len()]);
                let t = tm.mk_eq(a, b);
                bools.push(t);
            }
            1 => {
                let (a, b) = (ints[i % ints.len()], ints[j % ints.len()]);
                let t = tm.mk_lt(a, b);
                bools.push(t);
            }
            2 if !bools.is_empty() => {
                let a = bools[i % bools.len()];
                let t = tm.mk_not(a);
                bools.push(t);
            }
            3 if bools.len() >= 2 => {
                let (a, b) = (bools[i % bools.len()], bools[j % bools.len()]);
                let t = tm.mk_and(a, b);
                bools.push(t);
            }
            4 if bools.len() >= 2 => {
                let (a, b) = (bools[i % bools.len()], bools[j % bools.len()]);
                let t = tm.mk_or(a, b);
                bools.push(t);
            }
            5 => {
                let a = ints[i % ints.len()];
                let t = if j % 2 == 0 {
                    tm.mk_succ(a)
                } else {
                    tm.mk_pred(a)
                };
                ints.push(t);
            }
            6 if !bools.is_empty() => {
                let c = bools[i % bools.len()];
                let (a, b) = (ints[i % ints.len()], ints[j % ints.len()]);
                let t = tm.mk_ite_int(c, a, b);
                ints.push(t);
            }
            7 => {
                let a = ints[i % ints.len()];
                let t = tm.mk_app(f, vec![a]);
                ints.push(t);
            }
            _ => {
                let (a, b) = (ints[i % ints.len()], ints[j % ints.len()]);
                let t = tm.mk_app(g, vec![a, b]);
                ints.push(t);
            }
        }
    }
    bools.last().copied().unwrap_or_else(|| tm.mk_true())
}

fn random_recipe(rng: &mut Prng, max_len: usize) -> Vec<(u8, u8, u8)> {
    let len = rng.random_range(2..max_len);
    (0..len)
        .map(|_| (rng.random_u8(), rng.random_u8(), rng.random_u8()))
        .collect()
}

/// The benchmarks certification runs on: the lightest two by formula
/// size (always — RUP-replaying a proof is quadratic in the clause
/// database, so debug-mode replay of bigger benchmarks takes minutes),
/// or the full 49-benchmark suite when `SUFSAT_CERTIFY_FULL=1`.
fn certification_suite() -> Vec<Benchmark> {
    let mut suite = sufsat::workloads::suite();
    if std::env::var("SUFSAT_CERTIFY_FULL").as_deref() != Ok("1") {
        suite.sort_by_key(|b| b.tm.dag_size(b.formula));
        suite.truncate(2);
    }
    suite
}

#[test]
fn benchmark_answers_carry_checked_certificates() {
    let mut certified = 0usize;
    for mut bench in certification_suite() {
        for mode in eager_modes() {
            let options = DecideOptions {
                timeout: Some(Duration::from_millis(1500)),
                certify: true,
                ..DecideOptions::with_mode(mode)
            };
            let d = decide(&mut bench.tm, bench.formula, &options);
            match (&d.outcome, &d.certificate) {
                (Outcome::Unknown(_), _) => {}
                // Valid ⇒ the encoding of ¬φ is UNSAT ⇒ the logged DRAT
                // proof must replay through the RUP checker.
                (Outcome::Valid, Some(cert @ Certificate::Refutation { steps, checked })) => {
                    assert!(
                        *checked && cert.holds(),
                        "{} [{mode:?}]: refutation must check ({steps} steps)",
                        bench.name
                    );
                    certified += 1;
                }
                // Invalid ⇒ the decoded model must falsify both the
                // eliminated and the original formula under replay.
                (Outcome::Invalid(_), Some(cert @ Certificate::Counterexample { .. })) => {
                    assert!(cert.holds(), "{} [{mode:?}]: {cert:?}", bench.name);
                    certified += 1;
                }
                (outcome, certificate) => panic!(
                    "{} [{mode:?}]: definitive answer with wrong certificate: \
                     {outcome:?} / {certificate:?}",
                    bench.name
                ),
            }
        }
    }
    assert!(
        certified >= 12,
        "only {certified} benchmark answers were certified"
    );
}

#[test]
fn all_procedures_agree_with_exhaustive_oracle() {
    let mut rng = Prng::seed_from_u64(0xc405_0001);
    for _case in 0..24 {
        let recipe = random_recipe(&mut rng, 14);
        let mut tm = TermManager::new();
        let phi = build_random_sep(&mut tm, &recipe, 3);
        let analysis = SepAnalysis::new(&tm, phi, &HashSet::new());
        let expected = match brute_force_validity(&tm, phi, &analysis, 1, 200_000) {
            OracleResult::Valid => true,
            OracleResult::Invalid(_) => false,
            OracleResult::TooLarge => continue,
        };
        assert_eq!(
            decide_all_ways(&mut tm, phi),
            expected,
            "recipe: {recipe:?}"
        );
    }
}

#[test]
fn all_procedures_agree_on_uf_formulas() {
    let mut rng = Prng::seed_from_u64(0xc405_0002);
    for _case in 0..24 {
        let recipe = random_recipe(&mut rng, 12);
        let mut tm = TermManager::new();
        let phi = build_random_suf(&mut tm, &recipe, 3);
        // Agreement is the property; the return value is incidental.
        let _ = decide_all_ways(&mut tm, phi);
    }
}
