(vars x y) (funs (f 1))
(formula (=> (= x y) (= (f x) (f y))))
