(vars x y z)
(formula (not (and (< x y) (and (< y z) (< z x)))))
