(vars p q)
(assume (< p q))
(prove (< q p))
