(vars x y)
(formula (or (< x y) (>= x y)))
