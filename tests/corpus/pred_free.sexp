(vars x y) (preds (p 1))
(formula (=> (p x) (p y)))
