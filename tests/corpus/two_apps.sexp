(vars x y z) (funs (g 2))
(formula (=> (and (= x y) (= y z)) (= (g x z) (g y z))))
