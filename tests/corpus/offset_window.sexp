(vars p q)
(assume (< p q))
(prove (< p (succ (succ q))))
