(vars a b c d)
(formula (=> (and (= a b) (and (= b c) (= c d))) (= a d)))
