(vars x y z) (bvars b) (funs (f 1))
(define fx (f x))
(assume (ite b (= fx y) (= fx z)))
(prove (or (= fx y) (= fx z)))
