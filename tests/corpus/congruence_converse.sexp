(vars x y) (funs (f 1))
(formula (=> (= (f x) (f y)) (= x y)))
