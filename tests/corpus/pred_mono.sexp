(vars x y) (preds (p 1))
(formula (=> (and (= x y) (p x)) (p y)))
