(vars x y)
(formula (>= (ite (< x y) y x) y))
