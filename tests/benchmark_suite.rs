//! Integration tests over the synthetic benchmark suite: the hybrid
//! procedure must prove every valid-by-construction benchmark of moderate
//! size, and the suite must exhibit the structural features the paper's
//! experiments rely on.

use std::time::Duration;

use sufsat::workloads::{
    cache_coherence, device_driver, load_store_unit, ooo_invariant, pipeline, random_suf, suite,
    training_sample, translation_validation, Benchmark,
};
use sufsat::{decide, DecideOptions, EncodingMode, Outcome};

fn hybrid_decides_valid(mut bench: Benchmark) {
    let mut options = DecideOptions::with_mode(EncodingMode::Hybrid(50));
    options.timeout = Some(Duration::from_secs(60));
    let d = decide(&mut bench.tm, bench.formula, &options);
    assert!(
        d.outcome.is_valid(),
        "{}: expected valid, got {:?}",
        bench.name,
        d.outcome
    );
}

#[test]
fn hybrid_proves_small_members_of_every_family() {
    hybrid_decides_valid(pipeline(2, 3, 5));
    hybrid_decides_valid(ooo_invariant(5, 2));
    hybrid_decides_valid(cache_coherence(3, 4));
    hybrid_decides_valid(load_store_unit(4, 5));
    hybrid_decides_valid(device_driver(10, 5));
    hybrid_decides_valid(translation_validation(10, 3, 5));
}

#[test]
fn sd_handles_the_invariant_family_where_eij_blows_up() {
    let mut bench = ooo_invariant(12, 1);
    // EIJ: translation blow-up under a tight budget.
    let mut eij = DecideOptions::with_mode(EncodingMode::Eij);
    eij.trans_budget = 50_000;
    let d_eij = decide(&mut bench.tm, bench.formula, &eij);
    assert_eq!(
        d_eij.outcome,
        Outcome::Unknown(sufsat::StopReason::TranslationBudget),
        "EIJ should exceed the transitivity budget on a dense class"
    );
    // SD: completes.
    let mut sd = DecideOptions::with_mode(EncodingMode::Sd);
    sd.timeout = Some(Duration::from_secs(60));
    let d_sd = decide(&mut bench.tm, bench.formula, &sd);
    assert!(d_sd.outcome.is_valid());
}

#[test]
fn hybrid_threshold_picks_sd_for_dense_classes() {
    let mut bench = ooo_invariant(10, 1);
    let mut options = DecideOptions::with_mode(EncodingMode::Hybrid(100));
    options.timeout = Some(Duration::from_secs(60));
    let d = decide(&mut bench.tm, bench.formula, &options);
    assert!(d.outcome.is_valid());
    assert!(
        d.stats.sd_classes >= 1,
        "the dense tag class must fall back to SD: {:?}",
        d.stats
    );
}

#[test]
fn suite_structure_matches_the_paper() {
    let s = suite();
    assert_eq!(s.len(), 49);
    assert_eq!(s.iter().filter(|b| b.invariant_checking).count(), 10);
    assert_eq!(training_sample().len(), 16);
}

#[test]
fn random_formulas_decide_consistently() {
    for seed in 0..6 {
        let mut bench = random_suf(25, 3, seed);
        let d_sd = decide(
            &mut bench.tm,
            bench.formula,
            &DecideOptions::with_mode(EncodingMode::Sd),
        );
        let d_eij = decide(
            &mut bench.tm,
            bench.formula,
            &DecideOptions::with_mode(EncodingMode::Eij),
        );
        assert_eq!(
            d_sd.outcome.is_valid(),
            d_eij.outcome.is_valid(),
            "seed {seed}"
        );
    }
}

#[test]
fn suite_round_trips_through_the_text_format() {
    // Dump each benchmark as a problem file (with let-extraction of shared
    // nodes) and parse it back: the DAG must reconstruct exactly.
    for bench in suite().into_iter().take(12) {
        let text = sufsat::suf::print_problem(&bench.tm, bench.formula);
        let mut tm2 = sufsat::TermManager::new();
        let phi2 = sufsat::parse_problem(&mut tm2, &text)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert_eq!(
            bench.tm.dag_size(bench.formula),
            tm2.dag_size(phi2),
            "{} round trip changed the DAG",
            bench.name
        );
    }
}

#[test]
fn tv_family_is_equality_only() {
    // Translation validation produces no strict inequalities, so the
    // fixed hybrid should put every class under EIJ.
    let mut bench = translation_validation(12, 3, 3);
    let d = decide(
        &mut bench.tm,
        bench.formula,
        &DecideOptions::with_mode(EncodingMode::FixedHybrid),
    );
    assert!(d.outcome.is_valid());
    assert_eq!(d.stats.sd_classes, 0, "{:?}", d.stats);
}
