//! Concurrency and soak battery for the `sufsat-serve` daemon.
//!
//! Drives a real in-process server over real TCP connections: mixed
//! decide/portfolio/session traffic from many clients, mid-solve
//! disconnects, deadline expiry (in the queue and in the solver),
//! admission-control overload bursts, and graceful drains. Every verdict
//! the server hands out is compared against a fresh [`sufsat::decide`]
//! on the same formula, and every test ends by proving the server
//! reclaimed everything: zero inflight jobs, zero open sessions.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use sufsat::serve::{reply_status, reply_verdict, Client, CounterSnapshot, ServeOptions, Server};
use sufsat::{decide, DecideOptions, Outcome, TermManager};
use sufsat_obs::json::{self, Json};

/// Shared declarations for the small-problem pool and session scripts.
const HEADER: &str = "(vars a b c) (funs (f 1) (g 1))";

/// `(HEADER (formula BODY))` — one self-contained problem text.
fn problem(body: &str) -> String {
    format!("{HEADER} (formula {body})")
}

/// Mixed pool of quick decide bodies (valid and invalid).
const POOL: &[&str] = &[
    "(=> (= a b) (= (f a) (f b)))",
    "(= a b)",
    "(or (= a b) (not (= a b)))",
    "(=> (= (f a) (f b)) (= a b))",
    "(=> (and (= a b) (= b c)) (= (f a) (f c)))",
    "(=> (= a (succ b)) (> a b))",
    "(and (= (g a) b) (not (= (g a) b)))",
];

/// The reference verdict for a problem text, via a fresh end-to-end
/// decide with the server's default options.
fn reference_verdict(text: &str) -> &'static str {
    let mut tm = TermManager::new();
    let phi = sufsat::parse_problem(&mut tm, text).expect("pool problem parses");
    match decide(&mut tm, phi, &DecideOptions::default()).outcome {
        Outcome::Valid => "valid",
        Outcome::Invalid(_) => "invalid",
        Outcome::Unknown(_) => "unknown",
    }
}

/// An EUF pigeonhole instance: `pigeons` pigeons into `pigeons - 1`
/// holes. The asserted conjunction is unsatisfiable, so the decide text
/// is valid — but proving it is exponentially hard for CDCL, which makes
/// this the standard "still solving when something else happens" load.
fn php_problem(pigeons: usize) -> String {
    let holes = pigeons - 1;
    let mut vars = String::new();
    for i in 0..pigeons {
        vars.push_str(&format!(" p{i}"));
    }
    for j in 0..holes {
        vars.push_str(&format!(" h{j}"));
    }
    let mut conj = String::new();
    for i in 0..pigeons {
        let mut alt = String::new();
        for j in 0..holes {
            alt.push_str(&format!(" (= p{i} h{j})"));
        }
        conj.push_str(&format!(" (or{alt})"));
    }
    for i in 0..pigeons {
        for k in i + 1..pigeons {
            conj.push_str(&format!(" (not (= p{i} p{k}))"));
        }
    }
    format!("(vars{vars}) (formula (not (and{conj})))")
}

fn call(client: &mut Client, body: &str) -> Json {
    client.call(body).expect("request round-trips")
}

/// At drain every received frame must have been answered exactly once:
/// `requests == ok + errors + overloaded`. Anything else means a request
/// was double-counted or silently dropped.
fn assert_counter_invariant(c: &CounterSnapshot) {
    assert_eq!(
        c.requests,
        c.ok + c.errors + c.overloaded,
        "requests != ok + errors + overloaded at drain: {c:?}"
    );
}

fn u64_field(reply: &Json, key: &str) -> u64 {
    reply
        .get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("reply lacks u64 `{key}`: {reply:?}"))
}

/// Polls `stats` until `pred` holds (or panics after ~10 s).
fn wait_for_stats(addr: &str, what: &str, pred: impl Fn(&Json) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut c = Client::connect(addr).expect("stats connect");
        let stats = c.stats().expect("stats reply");
        if pred(&stats) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; last stats: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// A session script: interleaved assert/push/pop/check whose every check
/// verdict must equal `decide` on the negated live conjunction.
fn run_session_script(client: &mut Client) {
    let open = call(client, r#"{"op":"session-open"}"#);
    assert_eq!(reply_status(&open), "ok", "open failed: {open:?}");
    let sid = u64_field(&open, "session");

    let assert_body = |client: &mut Client, body: &str| {
        let mut msg = format!("{{\"op\":\"session-assert\",\"session\":{sid},\"problem\":");
        json::escape_into(&mut msg, &problem(body));
        msg.push('}');
        let reply = call(client, &msg);
        assert_eq!(reply_status(&reply), "ok", "assert failed: {reply:?}");
    };
    let check = |client: &mut Client, live: &[&str]| {
        let reply = call(
            client,
            &format!("{{\"op\":\"session-check\",\"session\":{sid},\"timeout_ms\":60000}}"),
        );
        assert_eq!(reply_status(&reply), "ok", "check failed: {reply:?}");
        let expected = reference_verdict(&problem(&format!("(not (and {}))", live.join(" "))));
        assert_eq!(
            reply_verdict(&reply),
            expected,
            "session check disagrees with fresh decide on {live:?}"
        );
    };

    let a1 = "(= a b)";
    let a2 = "(not (= (f a) (f b)))";
    let a3 = "(= b (succ c))";
    assert_body(client, a1);
    check(client, &[a1]);
    let push = call(client, &format!("{{\"op\":\"session-push\",\"session\":{sid}}}"));
    assert_eq!(u64_field(&push, "depth"), 1);
    assert_body(client, a2);
    check(client, &[a1, a2]);
    let pop = call(client, &format!("{{\"op\":\"session-pop\",\"session\":{sid}}}"));
    assert_eq!(u64_field(&pop, "depth"), 0);
    assert_body(client, a3);
    check(client, &[a1, a3]);
    let close = call(client, &format!("{{\"op\":\"session-close\",\"session\":{sid}}}"));
    assert_eq!(reply_status(&close), "ok", "close failed: {close:?}");
}

#[test]
fn soak_mixed_traffic() {
    const CLIENTS: usize = 8;
    const REQUESTS: usize = 50;
    let expected: Vec<&'static str> = POOL.iter().map(|b| reference_verdict(&problem(b))).collect();
    let handle = Server::bind(
        "127.0.0.1:0",
        ServeOptions {
            workers: 4,
            queue_cap: 64,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr().to_string();
    let mismatches = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for t in 0..CLIENTS {
            let addr = &addr;
            let expected = &expected;
            let mismatches = &mismatches;
            s.spawn(move || {
                let mut client = Client::connect(&**addr).expect("soak connect");
                client
                    .set_read_timeout(Some(Duration::from_secs(120)))
                    .unwrap();
                for r in 0..REQUESTS {
                    match (t + r) % 9 {
                        // One request in nine runs a whole session script.
                        8 => run_session_script(&mut client),
                        k => {
                            let body = POOL[k % POOL.len()];
                            let portfolio = k % 2 == 1;
                            let op = if portfolio { "decide-portfolio" } else { "decide" };
                            let mut msg = format!("{{\"op\":\"{op}\",\"problem\":");
                            json::escape_into(&mut msg, &problem(body));
                            msg.push_str(",\"timeout_ms\":60000}");
                            let reply = call(&mut client, &msg);
                            assert_eq!(
                                reply_status(&reply),
                                "ok",
                                "soak decide failed: {reply:?}"
                            );
                            if reply_verdict(&reply) != expected[k % POOL.len()] {
                                mismatches.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
    });

    assert_eq!(
        mismatches.load(Ordering::Relaxed),
        0,
        "server verdicts diverged from fresh decide"
    );
    let mut c = Client::connect(&*addr).unwrap();
    let stats = c.stats().unwrap();
    let panics = stats
        .get("counters")
        .and_then(|c| c.get("panics"))
        .and_then(Json::as_u64);
    assert_eq!(panics, Some(0), "workers panicked during the soak");
    let report = handle.shutdown();
    assert_eq!(report.inflight, 0, "jobs leaked past shutdown");
    assert_eq!(report.open_sessions, 0, "sessions leaked past shutdown");
    assert_eq!(report.counters.panics, 0);
    assert!(report.counters.requests >= (CLIENTS * REQUESTS) as u64);
    assert_counter_invariant(&report.counters);
}

#[test]
fn disconnect_mid_solve_frees_the_lane() {
    let handle = Server::bind(
        "127.0.0.1:0",
        ServeOptions {
            workers: 1,
            queue_cap: 8,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr().to_string();

    // Occupy the only worker with a pigeonhole instance that CDCL cannot
    // finish in test-relevant time, then vanish.
    let hard = php_problem(12);
    {
        let mut doomed = Client::connect(&*addr).unwrap();
        let mut msg = String::from("{\"op\":\"decide\",\"problem\":");
        json::escape_into(&mut msg, &hard);
        msg.push('}');
        doomed.send_raw(msg.as_bytes()).unwrap();
        // Let the worker pick it up before hanging up on it.
        wait_for_stats(&addr, "hard job to start", |s| {
            s.get("inflight").and_then(Json::as_f64) == Some(1.0)
        });
        // `doomed` drops here: connection cleanup must cancel the solve.
    }

    // The lane must come back fast — far faster than the solve would
    // ever finish on its own.
    let started = Instant::now();
    let mut client = Client::connect(&*addr).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let reply = client
        .decide(&problem(POOL[0]), Some(Duration::from_secs(30)))
        .unwrap();
    assert_eq!(reply_status(&reply), "ok");
    assert_eq!(reply_verdict(&reply), "valid");
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "lane not reclaimed after disconnect"
    );
    wait_for_stats(&addr, "cancellation to be recorded", |s| {
        s.get("counters")
            .and_then(|c| c.get("cancelled"))
            .and_then(Json::as_u64)
            .is_some_and(|n| n >= 1)
    });
    let report = handle.shutdown();
    assert_eq!(report.inflight, 0);
    assert_counter_invariant(&report.counters);
}

#[test]
fn deadline_expiry_bounds_latency() {
    let handle = Server::bind(
        "127.0.0.1:0",
        ServeOptions {
            workers: 1,
            queue_cap: 8,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr().to_string();
    let hard = php_problem(12);

    // Solver-side expiry: the deadline lands mid-search.
    let mut client = Client::connect(&*addr).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let started = Instant::now();
    let reply = client.decide(&hard, Some(Duration::from_millis(300))).unwrap();
    let elapsed = started.elapsed();
    assert_eq!(reply_status(&reply), "ok");
    assert_eq!(reply_verdict(&reply), "unknown", "expected timeout: {reply:?}");
    assert_eq!(
        reply.get("reason").and_then(Json::as_str),
        Some("timeout"),
        "unexpected reason: {reply:?}"
    );
    assert!(
        elapsed < Duration::from_secs(30),
        "deadline overshot by far: {elapsed:?}"
    );

    // Queue-side expiry: with the lone worker busy, a short-deadline job
    // times out while still waiting and is answered without solving.
    let mut blocker = Client::connect(&*addr).unwrap();
    let mut msg = String::from("{\"op\":\"decide\",\"problem\":");
    json::escape_into(&mut msg, &hard);
    msg.push_str(",\"timeout_ms\":5000}");
    blocker.send_raw(msg.as_bytes()).unwrap();
    wait_for_stats(&addr, "blocker to start", |s| {
        s.get("inflight").and_then(Json::as_f64) == Some(1.0)
            && s.get("queue_depth").and_then(Json::as_f64) == Some(0.0)
    });
    let reply = client.decide(&hard, Some(Duration::from_millis(100))).unwrap();
    assert_eq!(reply_status(&reply), "ok");
    assert_eq!(reply_verdict(&reply), "unknown");
    assert_eq!(reply.get("queue_expired").and_then(Json::as_u64), Some(1));
    drop(blocker);
    let report = handle.shutdown();
    assert_eq!(report.inflight, 0);
    assert!(report.counters.deadline_expired >= 1);
    assert!(report.counters.timeouts >= 2);
    assert_counter_invariant(&report.counters);
}

#[test]
fn overload_burst_rejects_immediately() {
    let handle = Server::bind(
        "127.0.0.1:0",
        ServeOptions {
            workers: 1,
            queue_cap: 1,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr().to_string();
    let hard = php_problem(12);
    let send_hard = |timeout_ms: u64| -> Client {
        let mut c = Client::connect(&*addr).unwrap();
        let mut msg = String::from("{\"op\":\"decide\",\"problem\":");
        json::escape_into(&mut msg, &hard);
        msg.push_str(&format!(",\"timeout_ms\":{timeout_ms}}}"));
        c.send_raw(msg.as_bytes()).unwrap();
        c
    };

    // One job on the worker, one in the queue.
    let running = send_hard(60_000);
    wait_for_stats(&addr, "first hard job to start", |s| {
        s.get("inflight").and_then(Json::as_f64) == Some(1.0)
            && s.get("queue_depth").and_then(Json::as_f64) == Some(0.0)
    });
    let queued = send_hard(60_000);
    wait_for_stats(&addr, "second hard job to queue", |s| {
        s.get("queue_depth").and_then(Json::as_f64) == Some(1.0)
    });

    // The burst: every request must bounce with `overloaded`, fast.
    let mut client = Client::connect(&*addr).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let started = Instant::now();
    for _ in 0..10 {
        let reply = client.decide(&problem(POOL[0]), None).unwrap();
        assert_eq!(
            reply_status(&reply),
            "overloaded",
            "full queue must reject: {reply:?}"
        );
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "overload rejection was not immediate"
    );

    // Dropping both hard clients cancels their jobs; the server drains.
    drop(running);
    drop(queued);
    let report = handle.shutdown();
    assert_eq!(report.inflight, 0);
    assert!(report.counters.overloaded >= 10);
    assert_counter_invariant(&report.counters);
}

#[test]
fn graceful_shutdown_drains_inflight_work() {
    let handle = Server::bind(
        "127.0.0.1:0",
        ServeOptions {
            workers: 2,
            queue_cap: 8,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr().to_string();

    // A job that outlives the shutdown request by its timeout.
    let mut inflight = Client::connect(&*addr).unwrap();
    inflight.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let hard = php_problem(12);
    let mut msg = String::from("{\"id\":1,\"op\":\"decide\",\"problem\":");
    json::escape_into(&mut msg, &hard);
    msg.push_str(",\"timeout_ms\":1500}");
    inflight.send_raw(msg.as_bytes()).unwrap();
    wait_for_stats(&addr, "inflight job to start", |s| {
        s.get("inflight").and_then(Json::as_f64) == Some(1.0)
    });

    let mut admin = Client::connect(&*addr).unwrap();
    let reply = admin.shutdown_server().unwrap();
    assert_eq!(reply_status(&reply), "ok");

    // New work is refused while draining…
    let mut late = Client::connect(&*addr).unwrap();
    late.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    match late.decide(&problem(POOL[0]), None) {
        Ok(reply) => assert_eq!(reply_status(&reply), "error", "draining: {reply:?}"),
        Err(_) => {} // acceptor already gone — equally fine
    }

    // …but the admitted job still gets its answer.
    let reply = inflight.read_reply().unwrap();
    assert_eq!(reply_status(&reply), "ok");
    assert_eq!(reply_verdict(&reply), "unknown");

    let report = handle.wait();
    assert_eq!(report.inflight, 0);
    assert_eq!(report.queued, 0);
    assert_eq!(report.open_sessions, 0);
    assert_counter_invariant(&report.counters);
}

#[test]
fn session_error_paths_are_clean() {
    let handle = Server::bind("127.0.0.1:0", ServeOptions::default()).unwrap();
    let addr = handle.local_addr().to_string();
    let mut client = Client::connect(&*addr).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(60))).unwrap();

    // Unknown session.
    let reply = call(&mut client, r#"{"op":"session-check","session":424242}"#);
    assert_eq!(reply_status(&reply), "error");

    // Pop without push must be a clean error, not a worker panic.
    let open = call(&mut client, r#"{"op":"session-open"}"#);
    let sid = u64_field(&open, "session");
    let reply = call(&mut client, &format!("{{\"op\":\"session-pop\",\"session\":{sid}}}"));
    assert_eq!(reply_status(&reply), "error", "bare pop: {reply:?}");

    // The session still works after the rejected pop.
    let mut msg = format!("{{\"op\":\"session-assert\",\"session\":{sid},\"problem\":");
    json::escape_into(&mut msg, &problem("(= a b)"));
    msg.push('}');
    assert_eq!(reply_status(&call(&mut client, &msg)), "ok");

    // Close, then every further op is an unknown-session error.
    let close = call(&mut client, &format!("{{\"op\":\"session-close\",\"session\":{sid}}}"));
    assert_eq!(reply_status(&close), "ok");
    let reply = call(&mut client, &format!("{{\"op\":\"session-check\",\"session\":{sid}}}"));
    assert_eq!(reply_status(&reply), "error", "use after close: {reply:?}");
    let reply = call(&mut client, &format!("{{\"op\":\"session-close\",\"session\":{sid}}}"));
    assert_eq!(reply_status(&reply), "error", "double close: {reply:?}");

    let stats = client.stats().unwrap();
    let panics = stats
        .get("counters")
        .and_then(|c| c.get("panics"))
        .and_then(Json::as_u64);
    assert_eq!(panics, Some(0));
    let report = handle.shutdown();
    assert_eq!(report.open_sessions, 0, "closed session leaked");
    assert_counter_invariant(&report.counters);
}

#[test]
fn dropped_connection_reclaims_open_sessions() {
    let handle = Server::bind("127.0.0.1:0", ServeOptions::default()).unwrap();
    let addr = handle.local_addr().to_string();
    {
        let mut client = Client::connect(&*addr).unwrap();
        client.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        for _ in 0..3 {
            let open = call(&mut client, r#"{"op":"session-open"}"#);
            assert_eq!(reply_status(&open), "ok");
        }
        // Drop with all three sessions open.
    }
    wait_for_stats(&addr, "sessions to be reclaimed", |s| {
        s.get("open_sessions").and_then(Json::as_f64) == Some(0.0)
    });
    let report = handle.shutdown();
    assert_eq!(report.open_sessions, 0);
    assert_eq!(report.counters.sessions_opened, 3);
    assert_counter_invariant(&report.counters);
}
