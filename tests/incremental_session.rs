//! Push/pop state-machine equivalence for the incremental session.
//!
//! A session is a stateful machine over `push`/`assert`/`check`/`pop`;
//! its only specification is the stateless one: at *every* point, `check`
//! must answer exactly like a fresh `core::decide(¬(A₁ ∧ … ∧ Aₙ))` over
//! the live assertions. This test drives interleaved operation sequences
//! — scripted retraction scenarios, PRNG-driven random walks, the
//! checked-in fuzz corpus, and the lightest synthetic benchmark families
//! — comparing against the from-scratch reference after every step.

use sufsat_core::{decide, DecideOptions, EncodingMode, Outcome};
use sufsat_fuzz::{generate, GenConfig};
use sufsat_incremental::{conjuncts_of, Session};
use sufsat_prng::Prng;
use sufsat_suf::{parse_problem, TermId, TermManager};
use sufsat_workloads::{random_suf, translation_validation};

/// Mirror of the session's live assertion stack, for reference checks.
#[derive(Default)]
struct Reference {
    frames: Vec<usize>,
    live: Vec<TermId>,
}

impl Reference {
    fn push(&mut self) {
        self.frames.push(self.live.len());
    }

    fn pop(&mut self) {
        let mark = self.frames.pop().expect("reference stack underflow");
        self.live.truncate(mark);
    }

    fn assert(&mut self, t: TermId) {
        self.live.push(t);
    }

    /// Decides the live conjunction from scratch on a cloned manager.
    fn verdict(&self, tm: &TermManager, options: &DecideOptions) -> &'static str {
        let mut tm = tm.clone();
        let conj = tm.mk_and_many(&self.live);
        let query = tm.mk_not(conj);
        label(&decide(&mut tm, query, options).outcome)
    }
}

fn label(outcome: &Outcome) -> &'static str {
    match outcome {
        Outcome::Valid => "unsat",
        Outcome::Invalid(_) => "sat",
        Outcome::Unknown(_) => "unknown",
    }
}

/// One lockstep comparison: the session's check against the reference.
fn check_agrees(session: &mut Session, reference: &Reference, options: &DecideOptions, at: &str) {
    let expected = reference.verdict(session.term_manager(), options);
    let result = session.check();
    assert_eq!(
        label(&result.outcome),
        expected,
        "session diverged from from-scratch decide {at}"
    );
    if let Some(core) = &result.unsat_core {
        assert!(!core.is_empty(), "unsat answers must carry a core {at}");
    }
}

fn modes() -> Vec<EncodingMode> {
    vec![
        EncodingMode::Sd,
        EncodingMode::Eij,
        EncodingMode::Hybrid(0),
        EncodingMode::Hybrid(700),
        EncodingMode::FixedHybrid,
    ]
}

/// The acceptance scenario: a satisfiable base, an unsatisfiable push,
/// and the pop provably retracting back to the pre-push verdict — in
/// every encoding mode.
#[test]
fn pop_retracts_unsat_to_the_pre_push_verdict() {
    for mode in modes() {
        let options = DecideOptions::with_mode(mode);
        let mut session = Session::new(options.clone());
        let mut reference = Reference::default();
        let (xy, yz, zx) = {
            let tm = session.term_manager_mut();
            let x = tm.int_var("x");
            let y = tm.int_var("y");
            let z = tm.int_var("z");
            (tm.mk_lt(x, y), tm.mk_lt(y, z), tm.mk_lt(z, x))
        };
        session.assert(xy);
        reference.assert(xy);
        session.assert(yz);
        reference.assert(yz);
        check_agrees(
            &mut session,
            &reference,
            &options,
            &format!("at the base ({mode:?})"),
        );
        session.push();
        reference.push();
        session.assert(zx);
        reference.assert(zx);
        let under_push = session.check();
        assert!(
            matches!(under_push.outcome, Outcome::Valid),
            "cycle must be unsat under the push ({mode:?})"
        );
        session.pop();
        reference.pop();
        let after_pop = session.check();
        assert!(
            matches!(after_pop.outcome, Outcome::Invalid(_)),
            "pop must retract to the satisfiable pre-push verdict ({mode:?})"
        );
        check_agrees(&mut session, &reference, &options, "after the pop");
    }
}

/// PRNG-driven random walks: interleaved push/assert/check/pop over
/// generated separation formulas, checked against the reference after
/// every mutation.
#[test]
fn random_interleavings_agree_with_decide_at_every_step() {
    let cfg = GenConfig {
        int_vars: 3,
        bool_vars: 1,
        ops: 8,
        ..GenConfig::separation_only()
    };
    for seed in 0..12u64 {
        let options = DecideOptions::default();
        let mut session = Session::new(options.clone());
        let mut reference = Reference::default();
        let mut rng = Prng::seed_from_u64(0xa11ce ^ seed);
        for step in 0..14 {
            let at = format!("(seed {seed}, step {step})");
            match rng.random_range(0..4u32) {
                0 => {
                    session.push();
                    reference.push();
                }
                1 if session.depth() > 0 => {
                    session.pop();
                    reference.pop();
                }
                _ => {
                    let phi = generate(session.term_manager_mut(), &mut rng, &cfg);
                    session.assert(phi);
                    reference.assert(phi);
                }
            }
            check_agrees(&mut session, &reference, &options, &at);
        }
    }
}

/// Uninterpreted-function walks exercise the persistent elimination
/// tables and the re-encode fallbacks (polarity flips, domain merges).
#[test]
fn random_uf_interleavings_agree_with_decide() {
    let cfg = GenConfig {
        int_vars: 3,
        bool_vars: 1,
        ops: 7,
        app_density: 0.4,
        ..GenConfig::default()
    };
    for seed in 0..8u64 {
        let options = DecideOptions::default();
        let mut session = Session::new(options.clone());
        let mut reference = Reference::default();
        let mut rng = Prng::seed_from_u64(0xf00d ^ (seed << 8));
        for step in 0..10 {
            let at = format!("(seed {seed}, step {step})");
            match rng.random_range(0..4u32) {
                0 => {
                    session.push();
                    reference.push();
                }
                1 if session.depth() > 0 => {
                    session.pop();
                    reference.pop();
                }
                _ => {
                    let phi = generate(session.term_manager_mut(), &mut rng, &cfg);
                    session.assert(phi);
                    reference.assert(phi);
                }
            }
            check_agrees(&mut session, &reference, &options, &at);
        }
    }
}

/// Every corpus formula, replayed as NNF-split conjuncts of its negation
/// pushed one frame at a time, checking after each push and each pop.
#[test]
fn corpus_replays_identically_through_a_session() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "sexp"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 12, "corpus shrank: {paths:?}");
    let options = DecideOptions::default();
    for path in paths {
        let at = format!("({})", path.display());
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        let mut tm = TermManager::new();
        let phi = parse_problem(&mut tm, &text).unwrap_or_else(|e| {
            panic!("corpus file {} must parse: {e}", path.display());
        });
        let neg = tm.mk_not(phi);
        let conjuncts = conjuncts_of(&mut tm, neg);
        let mut session = Session::with_term_manager(tm, options.clone());
        let mut reference = Reference::default();
        for c in &conjuncts {
            session.push();
            reference.push();
            session.assert(*c);
            reference.assert(*c);
            check_agrees(&mut session, &reference, &options, &at);
        }
        for _ in 0..conjuncts.len() {
            session.pop();
            reference.pop();
            check_agrees(&mut session, &reference, &options, &at);
        }
    }
}

/// The lightest benchmark-family instances, replayed through a session
/// and compared against their known validity.
#[test]
fn light_benchmark_families_replay_through_a_session() {
    let benches = [
        translation_validation(2, 2, 7),
        translation_validation(3, 2, 8),
        random_suf(12, 3, 9),
        random_suf(16, 3, 10),
    ];
    let options = DecideOptions::default();
    for bench in benches {
        let mut tm = bench.tm.clone();
        let neg = tm.mk_not(bench.formula);
        let conjuncts = conjuncts_of(&mut tm, neg);
        let mut session = Session::with_term_manager(tm, options.clone());
        let mut reference = Reference::default();
        for c in conjuncts {
            session.push();
            reference.push();
            session.assert(c);
            reference.assert(c);
        }
        check_agrees(
            &mut session,
            &reference,
            &options,
            &format!("({})", bench.name),
        );
        if let Some(valid) = bench.expected {
            let verdict = session.check();
            assert_eq!(
                matches!(verdict.outcome, Outcome::Valid),
                valid,
                "{}: session disagrees with the planted validity",
                bench.name
            );
        }
    }
}
