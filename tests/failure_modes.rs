//! Failure-injection tests: budgets, timeouts, malformed input, and the
//! error paths a downstream user can hit.

use std::time::Duration;

use sufsat::sat::dimacs::Cnf;
use sufsat::{decide, DecideOptions, EncodingMode, Outcome, StopReason, TermManager};

#[test]
fn sat_timeout_surfaces_as_unknown() {
    // A hard pigeonhole-flavored separation problem with a microscopic
    // timeout must report Unknown, not hang or lie.
    let mut tm = TermManager::new();
    let vars: Vec<_> = (0..9).map(|i| tm.int_var(&format!("v{i}"))).collect();
    let zero = tm.int_var("zero");
    let mut conj = Vec::new();
    // All nine variables within [zero, zero+7], pairwise distinct:
    // unsatisfiable, so the negation is valid but needs real search.
    for &v in &vars {
        conj.push(tm.mk_ge(v, zero));
        let hi = tm.mk_offset(zero, 7);
        conj.push(tm.mk_le(v, hi));
    }
    for i in 0..vars.len() {
        for j in i + 1..vars.len() {
            conj.push(tm.mk_ne(vars[i], vars[j]));
        }
    }
    let all = tm.mk_and_many(&conj);
    let phi = tm.mk_not(all);

    let mut options = DecideOptions::with_mode(EncodingMode::Sd);
    options.timeout = Some(Duration::from_millis(1));
    let d = decide(&mut tm, phi, &options);
    match d.outcome {
        Outcome::Unknown(StopReason::Timeout) | Outcome::Valid => {}
        other => panic!("unexpected outcome {other:?}"),
    }

    // Without the timeout the answer is Valid.
    let d = decide(&mut tm, phi, &DecideOptions::with_mode(EncodingMode::Sd));
    assert!(d.outcome.is_valid());
}

#[test]
fn conflict_budget_is_honored_and_recoverable() {
    let mut tm = TermManager::new();
    let vars: Vec<_> = (0..8).map(|i| tm.int_var(&format!("w{i}"))).collect();
    let zero = tm.int_var("zero");
    let mut conj = Vec::new();
    for &v in &vars {
        conj.push(tm.mk_ge(v, zero));
        let hi = tm.mk_offset(zero, 6);
        conj.push(tm.mk_le(v, hi));
    }
    for i in 0..vars.len() {
        for j in i + 1..vars.len() {
            conj.push(tm.mk_ne(vars[i], vars[j]));
        }
    }
    let all = tm.mk_and_many(&conj);
    let phi = tm.mk_not(all);
    let mut options = DecideOptions::with_mode(EncodingMode::Sd);
    options.conflict_budget = Some(2);
    let d = decide(&mut tm, phi, &options);
    match d.outcome {
        Outcome::Unknown(StopReason::ConflictBudget) | Outcome::Valid => {}
        other => panic!("unexpected outcome {other:?}"),
    }
}

#[test]
fn translation_budget_is_reported_with_stats() {
    let mut tm = TermManager::new();
    let vars: Vec<_> = (0..10).map(|i| tm.int_var(&format!("u{i}"))).collect();
    let mut atoms = Vec::new();
    for i in 0..vars.len() {
        for j in 0..vars.len() {
            if i != j {
                let off = tm.mk_offset(vars[j], (i % 4) as i64 - 2);
                atoms.push(tm.mk_lt(vars[i], off));
            }
        }
    }
    let phi = tm.mk_or_many(&atoms);
    let mut options = DecideOptions::with_mode(EncodingMode::Eij);
    options.trans_budget = 10;
    let d = decide(&mut tm, phi, &options);
    assert_eq!(d.outcome, Outcome::Unknown(StopReason::TranslationBudget));
    assert!(d.stats.sep_predicates > 0, "stats survive the failure");
    assert!(d.stats.classes > 0);
}

#[test]
fn dimacs_errors_are_reported_not_panicked() {
    for bad in [
        "",                 // missing problem line
        "p cnf x 1\n1 0\n", // bad count
        "p cnf 1 1\n1\n",   // unterminated clause
        "p cnf 1 1\n2 0\n", // out-of-range var
        "p cnf 1 2\n1 0\n", // clause-count mismatch
    ] {
        assert!(Cnf::parse(bad.as_bytes()).is_err(), "{bad:?}");
    }
}

#[test]
fn parser_errors_are_reported_not_panicked() {
    let mut tm = TermManager::new();
    for bad in [
        "(formula (= x y))",                    // undeclared vars
        "(vars x) (formula (= x))",             // arity
        "(vars x) (bvars x2) (formula x)",      // sort error (int in bool position)
        "(vars x) (formula (= x y)",            // unbalanced
        "(vars x) (funs (f 0)) (formula true)", // zero arity
        "(vars x)",                             // no formula
    ] {
        assert!(sufsat::parse_problem(&mut tm, bad).is_err(), "{bad:?}");
    }
}

#[test]
fn threshold_selection_handles_degenerate_samples() {
    use sufsat::{select_threshold, ThresholdSample};
    assert_eq!(select_threshold(&[]), sufsat::DEFAULT_SEP_THOLD);
    let one = [ThresholdSample {
        normalized_time: 1.0,
        sep_predicates: 5,
    }];
    assert_eq!(select_threshold(&one), sufsat::DEFAULT_SEP_THOLD);
    // Identical times still produce a threshold.
    let same: Vec<ThresholdSample> = (0..4)
        .map(|i| ThresholdSample {
            normalized_time: 2.0,
            sep_predicates: 100 * (i + 1),
        })
        .collect();
    let t = select_threshold(&same);
    assert!(t >= 100);
}
