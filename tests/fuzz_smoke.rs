//! Fixed-seed differential fuzzing smoke test: a small campaign over the
//! full procedure panel must come back clean, with every definitive
//! eager/portfolio answer carrying a checked certificate. The CI script
//! runs a larger campaign through the `sufsat-fuzz` binary; this keeps a
//! floor of coverage inside `cargo test` itself.

use sufsat_fuzz::{run_campaign, CampaignConfig, OracleOptions};

#[test]
fn fixed_seed_campaign_is_clean() {
    let config = CampaignConfig {
        seed: 0x5eed_2026,
        cases: 20,
        metamorphic: true,
        oracle: OracleOptions {
            // Lazy/SVC baselines and the portfolio run in the CI campaign
            // and the fuzz crate's own tests; the smoke test keeps to the
            // certified eager lanes to stay fast in debug builds.
            include_baselines: false,
            include_portfolio: false,
            ..OracleOptions::default()
        },
        ..CampaignConfig::default()
    };
    let summary = run_campaign(&config);
    assert!(summary.clean(), "failures: {:#?}", summary.failures);
    assert_eq!(summary.cases_run, 20);
    assert!(summary.definitive_cases >= 15, "{summary:?}");
    assert!(summary.meta_checks >= 30, "{summary:?}");
    // Every definitive answer is certified except those of the
    // `eager:preprocess` lens (uncertified so bounded variable
    // elimination is actually exercised) and the `cached` lens (its
    // warm answers replay a stored verdict, which has no certificate) —
    // at most one uncertified answer each per case.
    assert!(summary.certified_answers > 0);
    assert!(
        summary.certified_answers >= summary.definitive_answers - 2 * summary.definitive_cases,
        "at most two uncertified definitive answers per case: {summary:?}"
    );
}
