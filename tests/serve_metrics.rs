//! End-to-end battery for the serve introspection layer: the `metrics`,
//! `health` and `debug` protocol ops, the plain-HTTP Prometheus
//! exposition listener, the slow-request log and the drain-state flip.
//!
//! Drives a real server over real TCP: quick decides to populate the
//! latency histograms, one hard pigeonhole decide so the solver
//! publishes progress heartbeats and lands in the slow log, then a
//! scrape of `GET /metrics` and `GET /health` before and during a
//! graceful drain.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use sufsat::serve::{reply_status, reply_verdict, Client, ServeOptions, Server};
use sufsat_obs::json::{self, Json};

/// An EUF pigeonhole instance: `pigeons` pigeons into `pigeons - 1`
/// holes — exponentially hard for CDCL, so a bounded-timeout decide is
/// guaranteed to rack up conflicts and heartbeats before expiring.
fn php_problem(pigeons: usize) -> String {
    let holes = pigeons - 1;
    let mut vars = String::new();
    for i in 0..pigeons {
        vars.push_str(&format!(" p{i}"));
    }
    for j in 0..holes {
        vars.push_str(&format!(" h{j}"));
    }
    let mut conj = String::new();
    for i in 0..pigeons {
        let mut alt = String::new();
        for j in 0..holes {
            alt.push_str(&format!(" (= p{i} h{j})"));
        }
        conj.push_str(&format!(" (or{alt})"));
    }
    for i in 0..pigeons {
        for k in i + 1..pigeons {
            conj.push_str(&format!(" (not (= p{i} p{k}))"));
        }
    }
    format!("(vars{vars}) (formula (not (and{conj})))")
}

/// One HTTP/1.1 GET against the metrics listener; returns (head, body).
fn http_get(addr: &str, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("metrics listener connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: sufsat\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("http response");
    let split = raw.find("\r\n\r\n").expect("http head/body split");
    (raw[..split].to_owned(), raw[split + 4..].to_owned())
}

fn obj_u64(reply: &Json, outer: &str, key: &str) -> u64 {
    reply
        .get(outer)
        .and_then(|o| o.get(key))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("reply lacks `{outer}.{key}`: {reply:?}"))
}

#[test]
fn introspection_layer_end_to_end() {
    let handle = Server::bind(
        "127.0.0.1:0",
        ServeOptions {
            workers: 2,
            queue_cap: 16,
            metrics_addr: Some("127.0.0.1:0".to_owned()),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr().to_string();
    let metrics_addr = handle
        .metrics_addr()
        .expect("metrics listener bound")
        .to_string();

    let mut client = Client::connect(&*addr).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(60))).unwrap();

    // Populate the latency histograms with quick decides…
    const QUICK: usize = 6;
    for _ in 0..QUICK {
        let reply = client
            .decide(
                "(vars a b) (funs (f 1)) (formula (=> (= a b) (= (f a) (f b))))",
                Some(Duration::from_secs(30)),
            )
            .unwrap();
        assert_eq!(reply_status(&reply), "ok");
        assert_eq!(reply_verdict(&reply), "valid");
    }

    // …then one hard decide whose timeout lands mid-search, so the
    // solver heartbeats real progress and the request tops the slow log.
    let reply = client
        .decide(&php_problem(11), Some(Duration::from_millis(1200)))
        .unwrap();
    assert_eq!(reply_status(&reply), "ok");
    assert_eq!(reply_verdict(&reply), "unknown", "expected timeout: {reply:?}");

    // The `metrics` op sees every request in its distributions.
    let metrics = client.metrics().unwrap();
    assert_eq!(reply_status(&metrics), "ok");
    assert_eq!(
        metrics.get("state").and_then(Json::as_str),
        Some("running")
    );
    let seen = obj_u64(&metrics, "latency_us", "count");
    assert!(seen >= (QUICK + 1) as u64, "histogram missed requests: {metrics:?}");
    assert!(
        obj_u64(&metrics, "latency_us", "max") >= 1_000_000,
        "hard decide should dominate max latency: {metrics:?}"
    );
    assert_eq!(obj_u64(&metrics, "queue_wait_us", "count"), seen);
    let workers = match metrics.get("workers") {
        Some(Json::Arr(items)) => items.len(),
        other => panic!("metrics reply lacks workers array: {other:?}"),
    };
    assert_eq!(workers, 2);

    // The `health` op reports a running server with live workers.
    let health = client.health().unwrap();
    assert_eq!(reply_status(&health), "ok");
    assert_eq!(health.get("state").and_then(Json::as_str), Some("running"));
    assert_eq!(health.get("workers_alive").and_then(Json::as_u64), Some(2));

    // The slow log captured the hard request, worst first, with the
    // solver's final progress snapshot attached.
    let debug = client.debug_dump("slow_requests").unwrap();
    assert_eq!(reply_status(&debug), "ok");
    let slow = match debug.get("slow_requests") {
        Some(Json::Arr(items)) if !items.is_empty() => items,
        other => panic!("slow log empty: {other:?}"),
    };
    let worst = &slow[0];
    assert!(
        worst.get("latency_us").and_then(Json::as_u64).unwrap() >= 1_000_000,
        "worst entry is not the hard decide: {worst:?}"
    );
    let conflicts = worst
        .get("progress")
        .and_then(|p| p.get("conflicts"))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("worst entry lacks progress: {worst:?}"));
    assert!(conflicts > 0, "slow entry progress snapshot is empty: {worst:?}");

    // An unknown debug dump is a clean error.
    let reply = client.debug_dump("nonsense").unwrap();
    assert_eq!(reply_status(&reply), "error");

    // The Prometheus scrape exposes all the key families.
    let (head, body) = http_get(&metrics_addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "bad scrape status: {head}");
    for family in [
        "sufsat_requests_total",
        "sufsat_request_latency_us_bucket",
        "sufsat_request_latency_us_count",
        "sufsat_queue_wait_us_bucket",
        "sufsat_queue_depth",
        "sufsat_inflight",
        "sufsat_workers_alive",
        "sufsat_sat_conflicts{worker=\"0\"}",
    ] {
        assert!(body.contains(family), "scrape lacks `{family}`:\n{body}");
    }
    let (head, hbody) = http_get(&metrics_addr, "/health");
    assert!(head.starts_with("HTTP/1.1 200"), "bad health status: {head}");
    assert!(hbody.contains("\"state\":\"running\""), "health body: {hbody}");
    let (head, _) = http_get(&metrics_addr, "/nope");
    assert!(head.starts_with("HTTP/1.1 404"), "expected 404: {head}");

    // Start a drain with work still inflight: health (on the protocol
    // connection that already exists and over HTTP) must flip to
    // draining while the admitted job finishes.
    let mut inflight = Client::connect(&*addr).unwrap();
    inflight
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut msg = String::from("{\"id\":7,\"op\":\"decide\",\"problem\":");
    json::escape_into(&mut msg, &php_problem(11));
    msg.push_str(",\"timeout_ms\":2000}");
    inflight.send_raw(msg.as_bytes()).unwrap();

    let mut admin = Client::connect(&*addr).unwrap();
    let reply = admin.shutdown_server().unwrap();
    assert_eq!(reply_status(&reply), "ok");

    let health = client.health().unwrap();
    assert_eq!(
        health.get("state").and_then(Json::as_str),
        Some("draining"),
        "protocol health did not flip: {health:?}"
    );
    let (_, hbody) = http_get(&metrics_addr, "/health");
    assert!(
        hbody.contains("\"state\":\"draining\""),
        "http health did not flip: {hbody}"
    );
    let (_, body) = http_get(&metrics_addr, "/metrics");
    assert!(body.contains("sufsat_draining 1"), "scrape during drain:\n{body}");

    // The admitted job still gets its answer, and the final report obeys
    // the counter invariant.
    let reply = inflight.read_reply().unwrap();
    assert_eq!(reply_status(&reply), "ok");
    let report = handle.wait();
    assert_eq!(report.inflight, 0);
    assert_eq!(
        report.counters.requests,
        report.counters.ok + report.counters.errors + report.counters.overloaded,
        "counter invariant violated: {:?}",
        report.counters
    );
}
