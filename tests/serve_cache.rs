//! End-to-end battery for the daemon's result cache: cold miss → warm
//! hit on the same connection, a hit for an α-renamed spelling of the
//! query, cache counters in the `metrics` op and the Prometheus scrape,
//! and — the durability contract — a server killed and restarted on the
//! same persistent log answering a previously-seen query as a hit.

use std::time::Duration;

use sufsat::serve::{reply_status, reply_verdict, Client, ServeOptions, Server};
use sufsat_obs::json::Json;

fn cache_field(reply: &Json) -> &str {
    reply
        .get("cache")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("reply lacks `cache` field: {reply:?}"))
}

fn temp_log_path(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sufsat-serve-cache-{tag}-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

const CONGRUENCE: &str = "(vars a b) (funs (f 1)) (formula (=> (= a b) (= (f a) (f b))))";
// The same formula modulo renaming: must hit the same cache entry.
const CONGRUENCE_ALPHA: &str =
    "(vars u v) (funs (g 1)) (formula (=> (= u v) (= (g u) (g v))))";

#[test]
fn warm_requests_hit_the_cache() {
    let handle = Server::bind(
        "127.0.0.1:0",
        ServeOptions {
            workers: 2,
            queue_cap: 16,
            metrics_addr: Some("127.0.0.1:0".to_owned()),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr().to_string();
    let metrics_addr = handle.metrics_addr().unwrap().to_string();
    let mut client = Client::connect(&*addr).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(60))).unwrap();

    let cold = client
        .decide(CONGRUENCE, Some(Duration::from_secs(30)))
        .unwrap();
    assert_eq!(reply_status(&cold), "ok");
    assert_eq!(reply_verdict(&cold), "valid");
    assert_eq!(cache_field(&cold), "miss");

    let warm = client
        .decide(CONGRUENCE, Some(Duration::from_secs(30)))
        .unwrap();
    assert_eq!(reply_verdict(&warm), "valid");
    assert_eq!(cache_field(&warm), "hit");

    // The canonicalizer makes α-renamed spellings collide.
    let renamed = client
        .decide(CONGRUENCE_ALPHA, Some(Duration::from_secs(30)))
        .unwrap();
    assert_eq!(reply_verdict(&renamed), "valid");
    assert_eq!(cache_field(&renamed), "hit");

    // The `metrics` op and the Prometheus scrape both expose the cache.
    let metrics = client.metrics().unwrap();
    let cache = metrics
        .get("cache")
        .unwrap_or_else(|| panic!("metrics reply lacks cache block: {metrics:?}"));
    assert_eq!(cache.get("enabled").and_then(Json::as_bool), Some(true));
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(2));
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));
    assert_eq!(cache.get("inserts").and_then(Json::as_u64), Some(1));
    assert!(
        cache
            .get("hit_latency_us")
            .and_then(|h| h.get("count"))
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 2,
        "hit latency histogram empty: {cache:?}"
    );

    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(&*metrics_addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(stream, "GET /metrics HTTP/1.1\r\nHost: sufsat\r\n\r\n").unwrap();
    let mut body = String::new();
    stream.read_to_string(&mut body).unwrap();
    for family in [
        "sufsat_cache_hits_total 2",
        "sufsat_cache_misses_total 1",
        "sufsat_cache_inserts_total 1",
        "sufsat_cache_enabled 1",
        "sufsat_cache_entries 1",
        "sufsat_cache_hit_latency_us_count",
    ] {
        assert!(body.contains(family), "scrape lacks `{family}`:\n{body}");
    }

    let mut admin = Client::connect(&*addr).unwrap();
    admin.shutdown_server().unwrap();
    drop(client);
    handle.wait();
}

#[test]
fn restarted_server_answers_seen_queries_from_the_log() {
    let path = temp_log_path("restart");
    let opts = || ServeOptions {
        workers: 1,
        queue_cap: 8,
        cache_path: Some(path.clone()),
        ..ServeOptions::default()
    };

    // First life: solve once (a miss) so the log records the verdict.
    let handle = Server::bind("127.0.0.1:0", opts()).unwrap();
    let addr = handle.local_addr().to_string();
    let mut client = Client::connect(&*addr).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let cold = client
        .decide(CONGRUENCE, Some(Duration::from_secs(30)))
        .unwrap();
    assert_eq!(reply_verdict(&cold), "valid");
    assert_eq!(cache_field(&cold), "miss");
    let mut admin = Client::connect(&*addr).unwrap();
    admin.shutdown_server().unwrap();
    drop(client);
    handle.wait();

    // Second life, same log: the very first request is already warm.
    let handle = Server::bind("127.0.0.1:0", opts()).unwrap();
    let addr = handle.local_addr().to_string();
    let mut client = Client::connect(&*addr).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let warm = client
        .decide(CONGRUENCE, Some(Duration::from_secs(30)))
        .unwrap();
    assert_eq!(reply_verdict(&warm), "valid");
    assert_eq!(cache_field(&warm), "hit");
    let mut admin = Client::connect(&*addr).unwrap();
    admin.shutdown_server().unwrap();
    drop(client);
    handle.wait();

    let _ = std::fs::remove_file(&path);
}

#[test]
fn zero_budget_disables_the_cache() {
    let handle = Server::bind(
        "127.0.0.1:0",
        ServeOptions {
            workers: 1,
            queue_cap: 8,
            cache_bytes: 0,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr().to_string();
    let mut client = Client::connect(&*addr).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    for _ in 0..2 {
        let reply = client
            .decide(CONGRUENCE, Some(Duration::from_secs(30)))
            .unwrap();
        assert_eq!(reply_verdict(&reply), "valid");
        assert!(reply.get("cache").is_none(), "cache field on a cacheless server: {reply:?}");
    }
    let metrics = client.metrics().unwrap();
    let cache = metrics.get("cache").unwrap();
    assert_eq!(cache.get("enabled").and_then(Json::as_bool), Some(false));
    let mut admin = Client::connect(&*addr).unwrap();
    admin.shutdown_server().unwrap();
    drop(client);
    handle.wait();
}
