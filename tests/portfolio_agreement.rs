//! Portfolio-vs-single-lane agreement over the whole synthetic suite.
//!
//! The portfolio adopts whichever lane answers first, so its verdict must
//! match single-lane [`decide`] whenever both answer — soundness of the
//! lanes makes any definitive answer THE answer, and this test checks that
//! property end to end on all 49 benchmarks, whatever lane happens to win
//! the race on this machine.

use std::time::Duration;

use sufsat::workloads::suite;
use sufsat::{decide, decide_portfolio, Certificate, DecideOptions, Outcome, PortfolioOptions};

#[test]
fn portfolio_agrees_with_hybrid_on_the_whole_suite() {
    // Short per-run timeout: the heavyweight suite members time out in
    // both procedures (which counts as agreement); everything that
    // answers must answer identically.
    let timeout = Duration::from_millis(1500);
    let mut answered = 0usize;
    for mut bench in suite() {
        let mut single = DecideOptions::default();
        single.timeout = Some(timeout);
        let mut single_tm = bench.tm.clone();
        let d = decide(&mut single_tm, bench.formula, &single);

        let mut options = PortfolioOptions::default();
        options.base.timeout = Some(timeout);
        let p = decide_portfolio(&mut bench.tm, bench.formula, &options);

        // Soundness against the construction's known validity.
        if let (Some(expected), false) = (bench.expected, matches!(p.outcome, Outcome::Unknown(_)))
        {
            assert_eq!(
                p.outcome.is_valid(),
                expected,
                "{}: portfolio verdict contradicts construction",
                bench.name
            );
        }
        // Agreement whenever both procedures answered.
        let both_answered = !matches!(d.outcome, Outcome::Unknown(_))
            && !matches!(p.outcome, Outcome::Unknown(_));
        if both_answered {
            answered += 1;
            assert_eq!(
                d.outcome.is_valid(),
                p.outcome.is_valid(),
                "{}: portfolio ({:?} won) disagrees with single-lane HYBRID",
                bench.name,
                p.winner_mode()
            );
        }
        // A portfolio answer always names the lane it came from.
        if !matches!(p.outcome, Outcome::Unknown(_)) {
            assert!(p.winner.is_some(), "{}", bench.name);
        }
    }
    // The suite must actually exercise the comparison, not time out whole.
    assert!(
        answered >= 20,
        "only {answered} of 49 benchmarks answered in both procedures"
    );
}

/// Certified portfolio runs: whichever lane wins the race, its answer
/// must come with machine-checked evidence — a RUP-replayed refutation
/// for valid formulas, a model replay against the original formula for
/// invalid ones. Runs on the six lightest benchmarks by default (proof
/// replay is expensive in debug builds); set `SUFSAT_CERTIFY_FULL=1` to
/// certify the whole 49-benchmark suite.
#[test]
fn portfolio_answers_carry_checked_certificates() {
    let mut benches = suite();
    if std::env::var("SUFSAT_CERTIFY_FULL").as_deref() != Ok("1") {
        benches.sort_by_key(|b| b.tm.dag_size(b.formula));
        benches.truncate(6);
    }
    let mut certified = 0usize;
    for mut bench in benches {
        let mut options = PortfolioOptions::default();
        options.base.timeout = Some(Duration::from_millis(1500));
        options.base.certify = true;
        let p = decide_portfolio(&mut bench.tm, bench.formula, &options);
        match (&p.outcome, &p.certificate) {
            (Outcome::Unknown(_), _) => {}
            (Outcome::Valid, Some(cert @ Certificate::Refutation { .. }))
            | (Outcome::Invalid(_), Some(cert @ Certificate::Counterexample { .. })) => {
                assert!(
                    cert.holds(),
                    "{} ({:?} won): {cert:?}",
                    bench.name,
                    p.winner_mode()
                );
                certified += 1;
            }
            (outcome, certificate) => panic!(
                "{}: definitive portfolio answer with wrong certificate: \
                 {outcome:?} / {certificate:?}",
                bench.name
            ),
        }
    }
    assert!(certified >= 5, "only {certified} portfolio answers certified");
}
