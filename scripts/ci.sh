#!/usr/bin/env bash
# CI entry point: tier-1 verify plus smoke runs of the evaluation harness
# and the parallel portfolio path. Fully offline; no network, no extra
# tools beyond cargo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: build (release)"
cargo build --release --workspace

echo "==> tier-1: tests"
cargo test -q --workspace

echo "==> smoke: threshold selection (sequential)"
./target/release/paper-eval --timeout 2 threshold

echo "==> smoke: portfolio + parallel harness (2 worker threads)"
./target/release/paper-eval --timeout 2 --jobs 2 fig-portfolio

echo "==> obs: traced benchmark run + wire-schema validation"
rm -f target/ci-trace.jsonl
SUFSAT_TRACE=target/ci-trace.jsonl ./target/release/paper-eval --timeout 2 fig2
# check-trace exits non-zero on any schema drift: a record without
# ts/kind/name/thread, an unknown kind, or unbalanced span nesting.
./target/release/paper-eval check-trace target/ci-trace.jsonl
./target/release/paper-eval report target/ci-trace.jsonl \
    --stages target/ci-stages.json
# The aggregation document must carry its schema marker.
grep -q '"schema":"sufsat-stages-v1"' target/ci-stages.json

echo "==> incremental: push/pop state machine vs from-scratch decide"
cargo test -q --release --test incremental_session

echo "==> incremental: traced incremental-vs-scratch BMC + verdict equivalence"
# fig-incremental hard-errors if the persistent session and the
# from-scratch engine ever disagree on a verdict.
rm -f target/ci-incr-trace.jsonl
SUFSAT_TRACE=target/ci-incr-trace.jsonl \
    ./target/release/paper-eval --timeout 2 --csv target/ci-incr fig-incremental
./target/release/paper-eval check-trace target/ci-incr-trace.jsonl
# The CSV must cover the whole system suite (8 rows + header).
test "$(wc -l < target/ci-incr/fig-incremental.csv)" -eq 9

echo "==> perf-smoke: fig2 with and without CNF preprocessing (verdict equivalence)"
# The earlier traced fig2 run (target/ci-trace.jsonl) is the
# no-preprocessing baseline; rerun with --preprocess and hard-fail if any
# (benchmark, method) verdict differs between the two.
rm -f target/ci-pre-trace.jsonl
SUFSAT_TRACE=target/ci-pre-trace.jsonl \
    ./target/release/paper-eval --timeout 2 --preprocess fig2
# The preprocessing span/counters must pass the wire-schema check and
# appear in the stage aggregation.
./target/release/paper-eval check-trace target/ci-pre-trace.jsonl
./target/release/paper-eval report target/ci-pre-trace.jsonl \
    --stages target/ci-pre-stages.json
grep -q '"sat.preprocess"' target/ci-pre-stages.json
extract_verdicts() {
    grep '"name":"bench.result"' "$1" \
        | sed -E 's/.*"bench":"([^"]*)".*"method":"([^"]*)".*"verdict":"([^"]*)".*/\1,\2,\3/' \
        | sort
}
extract_verdicts target/ci-trace.jsonl     > target/ci-verdicts-nopre.csv
extract_verdicts target/ci-pre-trace.jsonl > target/ci-verdicts-pre.csv
# Definitive verdicts must agree pair-wise; `unknown` (a timeout under the
# 2s CI budget) is not a soundness signal and is skipped.
awk -F, '
    NR==FNR { a[$1","$2]=$3; next }
    ($1","$2 in a) && $3!="unknown" && a[$1","$2]!="unknown" && a[$1","$2]!=$3 {
        print "verdict mismatch on " $1 "/" $2 ": " a[$1","$2] " vs " $3; bad=1
    }
    END { exit bad }
' target/ci-verdicts-nopre.csv target/ci-verdicts-pre.csv

echo "==> serve: concurrency + soak battery (mixed clients, disconnects, overload)"
cargo test -q --release --test serve_session

echo "==> serve: introspection battery (metrics/health/debug ops, slow log, drain flip)"
cargo test -q --release --test serve_metrics

echo "==> serve: protocol fuzzing (200 malformed frames) + corpus replay"
./target/release/sufsat-fuzz --target serve --seed 2026 --cases 200 --quiet \
    --corpus target/fuzz-corpus
for f in crates/fuzz/corpus/serve-*.hex; do
    ./target/release/sufsat-fuzz --replay-hex "$f"
done

echo "==> serve: traced 30-second load run + live /metrics scrape + wire-schema validation"
rm -f target/ci-serve-trace.jsonl
CI_METRICS_PORT=9173
./target/release/serve-bench --duration 30 --clients 4 --workers 2 \
    --metrics-addr "127.0.0.1:${CI_METRICS_PORT}" \
    --trace target/ci-serve-trace.jsonl --out target/ci-BENCH_serve.json &
BENCH_PID=$!
# Scrape the Prometheus listener mid-run (no curl in CI: bash /dev/tcp).
# The key families must be live while load is flowing.
sleep 10
exec 3<>"/dev/tcp/127.0.0.1/${CI_METRICS_PORT}"
printf 'GET /metrics HTTP/1.1\r\nHost: ci\r\n\r\n' >&3
cat <&3 > target/ci-metrics-scrape.txt
exec 3<&-
for family in sufsat_request_latency_us_bucket sufsat_queue_wait_us_bucket \
              sufsat_queue_depth sufsat_inflight sufsat_sat_conflicts; do
    if ! grep -q "$family" target/ci-metrics-scrape.txt; then
        echo "live /metrics scrape is missing family $family" >&2
        kill "$BENCH_PID" 2>/dev/null || true
        exit 1
    fi
done
wait "$BENCH_PID"
./target/release/paper-eval check-trace target/ci-serve-trace.jsonl
grep -q '"schema": "sufsat-serve-bench-v2"' target/ci-BENCH_serve.json
# v2 must report queue-wait quantiles next to the latency quantiles.
grep -q '"queue_wait_us"' target/ci-BENCH_serve.json

echo "==> cache: unit + crash-recovery battery (canonicalizer, LRU, single-flight, torn tail)"
cargo test -q --release -p sufsat-cache

echo "==> cache: kill-restart warm hit + metrics exposure"
cargo test -q --release --test serve_cache

echo "==> cache: cold/warm/fresh differential lens (200 cases)"
./target/release/sufsat-fuzz --list-procedures | grep -qx "cached"
./target/release/sufsat-fuzz --seed 2026 --cases 200 --quiet --only cached \
    --corpus target/fuzz-corpus

echo "==> cache: traced duplicate-heavy bench (zipf) + hit-rate/speedup check"
rm -f target/ci-cache-trace.jsonl
./target/release/serve-bench --zipf 1.2 --seed 7 --clients 4 --workers 4 \
    --duration 8 --trace target/ci-cache-trace.jsonl \
    --out target/ci-BENCH_cache.json --check
./target/release/paper-eval check-trace target/ci-cache-trace.jsonl
grep -q '"schema": "sufsat-cache-bench-v1"' target/ci-BENCH_cache.json
# The trace must actually carry cache traffic, not just pass the schema.
grep -q '"name":"cache.hit"' target/ci-cache-trace.jsonl
grep -q '"name":"cache.insert"' target/ci-cache-trace.jsonl
# The earlier live /metrics scrape must expose the cache families too
# (they render unconditionally, zeros included, so absence is a bug).
for family in sufsat_cache_hits_total sufsat_cache_misses_total \
              sufsat_cache_coalesced_total sufsat_cache_entries \
              sufsat_cache_bytes sufsat_cache_hit_latency_us_bucket; do
    if ! grep -q "$family" target/ci-metrics-scrape.txt; then
        echo "live /metrics scrape is missing cache family $family" >&2
        exit 1
    fi
done

echo "==> smoke: differential fuzzing (fixed seed, certified answers)"
# The panel must include the preprocessing lens (BVE + model
# reconstruction differentially checked against the other ten members).
./target/release/sufsat-fuzz --list-procedures | grep -qx "eager:preprocess"
./target/release/sufsat-fuzz --seed 2026 --cases 200 --quiet \
    --corpus target/fuzz-corpus

echo "==> ci.sh: all checks passed"
