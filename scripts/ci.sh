#!/usr/bin/env bash
# CI entry point: tier-1 verify plus smoke runs of the evaluation harness
# and the parallel portfolio path. Fully offline; no network, no extra
# tools beyond cargo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: build (release)"
cargo build --release --workspace

echo "==> tier-1: tests"
cargo test -q --workspace

echo "==> smoke: threshold selection (sequential)"
./target/release/paper-eval --timeout 2 threshold

echo "==> smoke: portfolio + parallel harness (2 worker threads)"
./target/release/paper-eval --timeout 2 --jobs 2 fig-portfolio

echo "==> obs: traced benchmark run + wire-schema validation"
rm -f target/ci-trace.jsonl
SUFSAT_TRACE=target/ci-trace.jsonl ./target/release/paper-eval --timeout 2 fig2
# check-trace exits non-zero on any schema drift: a record without
# ts/kind/name/thread, an unknown kind, or unbalanced span nesting.
./target/release/paper-eval check-trace target/ci-trace.jsonl
./target/release/paper-eval report target/ci-trace.jsonl \
    --stages target/ci-stages.json
# The aggregation document must carry its schema marker.
grep -q '"schema":"sufsat-stages-v1"' target/ci-stages.json

echo "==> incremental: push/pop state machine vs from-scratch decide"
cargo test -q --release --test incremental_session

echo "==> incremental: traced incremental-vs-scratch BMC + verdict equivalence"
# fig-incremental hard-errors if the persistent session and the
# from-scratch engine ever disagree on a verdict.
rm -f target/ci-incr-trace.jsonl
SUFSAT_TRACE=target/ci-incr-trace.jsonl \
    ./target/release/paper-eval --timeout 2 --csv target/ci-incr fig-incremental
./target/release/paper-eval check-trace target/ci-incr-trace.jsonl
# The CSV must cover the whole system suite (8 rows + header).
test "$(wc -l < target/ci-incr/fig-incremental.csv)" -eq 9

echo "==> smoke: differential fuzzing (fixed seed, certified answers)"
./target/release/sufsat-fuzz --seed 2026 --cases 200 --quiet \
    --corpus target/fuzz-corpus

echo "==> ci.sh: all checks passed"
