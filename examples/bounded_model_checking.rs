//! Bounded model checking with the decision procedure as the back end —
//! the UCLID-style flow the paper's introduction motivates.
//!
//! Models a tiny arbiter: a grant token moves between two requesters under
//! symbolic requests; mutual exclusion must hold at every depth. A broken
//! variant grants both and is refuted with the failing depth reported.
//!
//! ```text
//! cargo run --release --example bounded_model_checking
//! ```

use sufsat::{check_bounded, BmcResult, DecideOptions, TermManager, TransitionSystem};

fn main() {
    let mut tm = TermManager::new();

    // Encoded grant state: `owner` holds which side owns the token; the
    // two side identities are distinct symbolic constants.
    let owner = tm.int_var("owner");
    let side_a = tm.int_var("side_a");
    let side_b = tm.int_var("side_b");
    let req = tm.int_var("req"); // per-step symbolic request
    let hot = tm.int_var("hot"); // request threshold

    // The token flips when the request is "hot".
    let flip = tm.mk_lt(hot, req);
    let owns_a = tm.mk_eq(owner, side_a);
    let other = tm.mk_ite_int(owns_a, side_b, side_a);
    let next_owner = tm.mk_ite_int(flip, other, owner);

    // Init: A owns, and the sides are distinct.
    let distinct = tm.mk_ne(side_a, side_b);
    let init = tm.mk_and(owns_a, distinct);

    // Safety: the owner is always one of the two sides (no lost token).
    let owns_b = tm.mk_eq(owner, side_b);
    let property = tm.mk_or(owns_a, owns_b);

    let system = TransitionSystem {
        state: vec![owner],
        next: vec![next_owner],
        inputs: vec![req],
        init,
        property,
    };
    let depth = 8;
    match check_bounded(&mut tm, &system, depth, &DecideOptions::default()) {
        BmcResult::Bounded(k) => println!("arbiter safe for all executions up to depth {k}"),
        other => panic!("the arbiter is safe: {other:?}"),
    }

    // A broken arbiter "parks" the token at a third location on overflow.
    let parked = tm.int_var("parked");
    let overflow = tm.mk_lt(req, side_a); // a nonsense condition: fires eventually
    let broken_next = tm.mk_ite_int(overflow, parked, next_owner);
    let broken = TransitionSystem {
        state: vec![owner],
        next: vec![broken_next],
        inputs: vec![req],
        init,
        property,
    };
    match check_bounded(&mut tm, &broken, depth, &DecideOptions::default()) {
        BmcResult::CounterexampleAt { step, assignment } => {
            println!(
                "token loss caught at depth {step} (counterexample over {} constants)",
                assignment.ints.len()
            );
            assert!(step >= 1);
        }
        other => panic!("the broken arbiter must fail: {other:?}"),
    }
}
