//! Quickstart: build an SUF formula, decide it with every encoding mode,
//! and inspect counterexamples.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sufsat::{decide, DecideOptions, EncodingMode, Outcome, TermManager};

fn main() {
    let mut tm = TermManager::new();

    // --- a valid formula: functional consistency with ordering ----------
    // (x = y  ∧  y < z)  =>  (f(x) = f(y)  ∧  x < z)
    let f = tm.declare_fun("f", 1);
    let x = tm.int_var("x");
    let y = tm.int_var("y");
    let z = tm.int_var("z");
    let fx = tm.mk_app(f, vec![x]);
    let fy = tm.mk_app(f, vec![y]);
    let eq_xy = tm.mk_eq(x, y);
    let lt_yz = tm.mk_lt(y, z);
    let hyp = tm.mk_and(eq_xy, lt_yz);
    let eq_f = tm.mk_eq(fx, fy);
    let lt_xz = tm.mk_lt(x, z);
    let conc = tm.mk_and(eq_f, lt_xz);
    let valid_formula = tm.mk_implies(hyp, conc);

    println!("formula: {}", sufsat::print_term(&tm, valid_formula));
    for mode in [
        EncodingMode::Sd,
        EncodingMode::Eij,
        EncodingMode::Hybrid(sufsat::DEFAULT_SEP_THOLD),
    ] {
        let d = decide(&mut tm, valid_formula, &DecideOptions::with_mode(mode));
        println!(
            "  {mode:?}: {:?}  (cnf clauses: {}, conflict clauses: {}, \
             sep predicates: {})",
            outcome_label(&d.outcome),
            d.stats.cnf_clauses,
            d.stats.conflict_clauses,
            d.stats.sep_predicates
        );
        assert!(d.outcome.is_valid());
    }

    // --- an invalid formula: the converse of functional consistency -----
    let hyp2 = tm.mk_eq(fx, fy);
    let conc2 = tm.mk_eq(x, y);
    let invalid_formula = tm.mk_implies(hyp2, conc2);
    println!("\nformula: {}", sufsat::print_term(&tm, invalid_formula));
    let d = decide(&mut tm, invalid_formula, &DecideOptions::default());
    match &d.outcome {
        Outcome::Invalid(cex) => {
            println!("  invalid; one falsifying assignment:");
            let mut entries: Vec<(String, i64)> = cex
                .ints
                .iter()
                .map(|(&v, &val)| (tm.int_var_name(v).to_owned(), val))
                .collect();
            entries.sort();
            for (name, val) in entries {
                println!("    {name} = {val}");
            }
        }
        other => panic!("expected invalid, got {other:?}"),
    }

    // --- the same problem via the text format ----------------------------
    let mut tm2 = TermManager::new();
    let phi = sufsat::parse_problem(
        &mut tm2,
        "(vars a b) (funs (g 1))
         (formula (=> (= a b) (= (g a) (g b))))",
    )
    .expect("parses");
    let d = decide(&mut tm2, phi, &DecideOptions::default());
    println!("\nparsed formula is {}", outcome_label(&d.outcome));
}

fn outcome_label(outcome: &Outcome) -> &'static str {
    match outcome {
        Outcome::Valid => "valid",
        Outcome::Invalid(_) => "invalid",
        Outcome::Unknown(_) => "unknown",
    }
}
