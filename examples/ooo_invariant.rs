//! Invariant checking for an out-of-order instruction queue — the workload
//! family where the paper found SD decisively better than EIJ (Figure 5).
//!
//! Shows the structural analysis behind the effect: one large equivalence
//! class, many separation predicates, and the resulting EIJ
//! transitivity-constraint counts versus SD clause counts.
//!
//! ```text
//! cargo run --release --example ooo_invariant
//! ```

use sufsat::workloads::ooo_invariant;
use sufsat::{decide, DecideOptions, EncodingMode, StopReason};

fn main() {
    println!(
        "{:>10} {:>7} {:>10} | {:>12} {:>12} | {:>12}",
        "benchmark", "nodes", "sep-preds", "SD clauses", "EIJ clauses", "EIJ trans"
    );
    for (tags, density) in [(4, 2), (6, 2), (8, 1), (10, 1)] {
        let mut bench = ooo_invariant(tags, density);
        let nodes = bench.dag_size();

        let mut sd_opts = DecideOptions::with_mode(EncodingMode::Sd);
        sd_opts.timeout = Some(std::time::Duration::from_secs(20));
        let sd = decide(&mut bench.tm, bench.formula, &sd_opts);
        assert!(sd.outcome.is_valid(), "the invariant is inductive");

        let mut eij_opts = DecideOptions::with_mode(EncodingMode::Eij);
        eij_opts.timeout = Some(std::time::Duration::from_secs(20));
        eij_opts.trans_budget = 500_000;
        let eij = decide(&mut bench.tm, bench.formula, &eij_opts);
        let eij_clauses = match &eij.outcome {
            sufsat::Outcome::Unknown(StopReason::TranslationBudget) => "blow-up".to_owned(),
            _ => eij.stats.cnf_clauses.to_string(),
        };
        println!(
            "{:>10} {:>7} {:>10} | {:>12} {:>12} | {:>12}",
            bench.name,
            nodes,
            sd.stats.sep_predicates,
            sd.stats.cnf_clauses,
            eij_clauses,
            eij.stats.trans_clauses,
        );
    }
    println!(
        "\nNote how the transitivity-constraint count races ahead of the SD\n\
         clause count as the class grows — the regime of the paper's\n\
         Figure 5, where the hybrid must fall back to SD."
    );
}
