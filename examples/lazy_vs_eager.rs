//! Lazy vs eager encoding on one formula family (the paper's Figure 6
//! comparison in miniature).
//!
//! The lazy (CVC-style) procedure re-discovers transitivity facts one
//! conflict clause at a time, while the eager hybrid encodes them up
//! front; on ordering-heavy formulas the iteration count of the lazy loop
//! grows quickly.
//!
//! ```text
//! cargo run --release --example lazy_vs_eager
//! ```

use std::time::Duration;

use sufsat::baselines::{decide_lazy, decide_svc, LazyOptions, SvcOptions};
use sufsat::{decide, DecideOptions, TermManager};

/// `(x₀ < x₁ < … < xₙ)  =>  ⋀_{i<j} xᵢ < xⱼ`: every pairwise conclusion is
/// a transitivity fact the lazy procedure must re-derive by refinement.
fn ordering_closure(tm: &mut TermManager, n: usize) -> sufsat::TermId {
    let vars: Vec<_> = (0..n).map(|i| tm.int_var(&format!("x{i}"))).collect();
    let chain: Vec<_> = vars.windows(2).map(|w| tm.mk_lt(w[0], w[1])).collect();
    let hyp = tm.mk_and_many(&chain);
    let mut pairs = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            pairs.push(tm.mk_lt(vars[i], vars[j]));
        }
    }
    let conc = tm.mk_and_many(&pairs);
    tm.mk_implies(hyp, conc)
}

fn main() {
    println!(
        "{:>6} | {:>14} | {:>22} | {:>14}",
        "n", "HYBRID", "CVC*-style (iters)", "SVC*-style"
    );
    for n in [4usize, 6, 8, 10] {
        let mut tm = TermManager::new();
        let phi = ordering_closure(&mut tm, n);

        let t0 = std::time::Instant::now();
        let d = decide(&mut tm, phi, &DecideOptions::default());
        assert!(d.outcome.is_valid());
        let hybrid_time = t0.elapsed();

        let lazy_opts = LazyOptions {
            timeout: Some(Duration::from_secs(20)),
            ..LazyOptions::default()
        };
        let t0 = std::time::Instant::now();
        let (lazy_outcome, lazy_stats) = decide_lazy(&mut tm, phi, &lazy_opts);
        assert!(lazy_outcome.is_valid());
        let lazy_time = t0.elapsed();

        let svc_opts = SvcOptions {
            timeout: Some(Duration::from_secs(20)),
            ..SvcOptions::default()
        };
        let t0 = std::time::Instant::now();
        let (svc_outcome, svc_stats) = decide_svc(&mut tm, phi, &svc_opts);
        assert!(svc_outcome.is_valid());
        let svc_time = t0.elapsed();

        println!(
            "{:>6} | {:>12.3}ms | {:>12.3}ms ({:>4}) | {:>10.3}ms ({} splits)",
            n,
            hybrid_time.as_secs_f64() * 1e3,
            lazy_time.as_secs_f64() * 1e3,
            lazy_stats.iterations,
            svc_time.as_secs_f64() * 1e3,
            svc_stats.splits,
        );
    }
    println!(
        "\nThe lazy loop needs one refinement per spurious Boolean model;\n\
         the eager transitivity constraints rule them all out in advance."
    );
}
