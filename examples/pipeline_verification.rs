//! Hardware verification scenario: Burch–Dill-style pipeline correctness.
//!
//! Builds a small write-buffer bypass network by hand — the shape of the
//! verification conditions the paper's hardware benchmarks came from — and
//! decides it with the hybrid procedure, then shows how positive-equality
//! analysis classifies the design's uninterpreted functions.
//!
//! ```text
//! cargo run --example pipeline_verification
//! ```

use sufsat::suf::analyze_polarity;
use sufsat::{decide, DecideOptions, EncodingMode, TermManager};

fn main() {
    let mut tm = TermManager::new();

    // Datapath abstractions: an ALU and the register file.
    let alu = tm.declare_fun("alu", 2);
    let rf = tm.declare_fun("rf", 1);

    // Two in-flight instructions write registers `d1` and `d2` with ALU
    // results computed from source registers.
    let d1 = tm.int_var("d1");
    let d2 = tm.int_var("d2");
    let s1 = tm.int_var("s1");
    let s2 = tm.int_var("s2");
    let rs1 = tm.mk_app(rf, vec![s1]);
    let rs2 = tm.mk_app(rf, vec![s2]);
    let v1 = tm.mk_app(alu, vec![rs1, rs2]);
    let v2 = tm.mk_app(alu, vec![rs2, rs1]);

    // A later read of register `q` through the bypass network: the
    // in-order implementation checks the younger write first...
    let q = tm.int_var("q");
    let rf_q = tm.mk_app(rf, vec![q]);
    let hit2 = tm.mk_eq(q, d2);
    let hit1 = tm.mk_eq(q, d1);
    let older = tm.mk_ite_int(hit1, v1, rf_q);
    let in_order = tm.mk_ite_int(hit2, v2, older);

    // ...while the reference model applies the writes the other way round,
    // which is only equivalent when the destinations differ.
    let younger = tm.mk_ite_int(hit2, v2, rf_q);
    let reordered = tm.mk_ite_int(hit1, v1, younger);

    let distinct = tm.mk_ne(d1, d2);
    let equal_reads = tm.mk_eq(in_order, reordered);
    let phi = tm.mk_implies(distinct, equal_reads);

    println!(
        "verification condition ({} DAG nodes):\n  {}",
        tm.dag_size(phi),
        sufsat::print_term(&tm, phi)
    );

    // Positive-equality classification: the ALU's results feed only the
    // positive equality, so it is a p-function; the register indices sit
    // under a negated equality and ITE conditions, so they are general.
    let info = analyze_polarity(&tm, phi);
    println!("\npositive-equality classification:");
    println!("  alu is a p-function: {}", info.is_p_fun(alu));
    println!("  rf  is a p-function: {}", info.is_p_fun(rf));

    for mode in [
        EncodingMode::Sd,
        EncodingMode::Eij,
        EncodingMode::Hybrid(700),
    ] {
        let d = decide(&mut tm, phi, &DecideOptions::with_mode(mode));
        assert!(d.outcome.is_valid(), "{mode:?}");
        println!(
            "  {mode:?}: valid  (classes: {}, sep predicates: {}, \
             cnf clauses: {}, p-fun fraction: {:.2})",
            d.stats.classes, d.stats.sep_predicates, d.stats.cnf_clauses, d.stats.p_fun_fraction
        );
    }

    // Without the distinctness hypothesis the condition fails; the
    // counterexample aliases the two destinations.
    let broken = equal_reads;
    let d = decide(&mut tm, broken, &DecideOptions::default());
    match d.outcome {
        sufsat::Outcome::Invalid(cex) => {
            let vd1 = cex.ints[&tm.find_int_var("d1").expect("declared")];
            let vd2 = cex.ints[&tm.find_int_var("d2").expect("declared")];
            println!(
                "\nwithout `d1 != d2` the condition is invalid; \
                 counterexample aliases d1 = {vd1}, d2 = {vd2}"
            );
            assert_eq!(vd1, vd2, "the counterexample must alias the writes");
        }
        other => panic!("expected invalid, got {other:?}"),
    }
}
