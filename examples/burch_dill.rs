//! Burch–Dill pipeline verification, end to end.
//!
//! The classic correctness statement for a pipelined processor is the
//! *commuting diagram*: flushing the pipeline and then taking an ISA step
//! reaches the same architectural state as taking one implementation step
//! and then flushing. This example builds both sides for a two-stage
//! pipeline with a bypass network — the exact verification-condition shape
//! the paper's hardware benchmarks came from — and proves it valid with
//! every encoding.
//!
//! ```text
//! cargo run --release --example burch_dill
//! ```

use sufsat::suf::Memory;
use sufsat::{decide, DecideOptions, EncodingMode, TermManager};

fn main() {
    let mut tm = TermManager::new();

    // Architectural state: a register file plus a pending write latched in
    // the pipeline (destination d0, value v0). The hardware's stage latch
    // holds its own copy `latch_v` of the value; the refinement relation
    // asserts it matches the architectural `v0`. (Without the copy, both
    // sides of the diagram would hash-cons to the same DAG node and the
    // proof would be vacuous.)
    let rf = Memory::new(&mut tm, "rf");
    let alu = tm.declare_fun("alu", 2);
    let d0 = tm.int_var("d0");
    let v0 = tm.int_var("v0");
    let latch_v = tm.int_var("latch_v");
    let refinement = tm.mk_eq(latch_v, v0);

    // The instruction entering the pipe: dst/src register indices.
    let d1 = tm.int_var("d1");
    let s1 = tm.int_var("s1");
    let s2 = tm.int_var("s2");

    // ---- implementation step, then flush --------------------------------
    // Stage 1 commits the latched write; the new instruction reads its
    // operands through the bypass network (forwarding the latched value
    // when the source aliases the pending destination).
    let rf_committed = rf.write(d0, latch_v);
    let bypass = |tm: &mut TermManager, rf: &Memory, src, d0, v0| {
        let hit = tm.mk_eq(src, d0);
        let raw = rf.read(tm, src);
        tm.mk_ite_int(hit, v0, raw)
    };
    let op1 = bypass(&mut tm, &rf, s1, d0, latch_v);
    let op2 = bypass(&mut tm, &rf, s2, d0, latch_v);
    let result = tm.mk_app(alu, vec![op1, op2]);
    // Flushing drains the new latch into the register file.
    let impl_then_flush = rf_committed.write(d1, result);

    // ---- flush, then ISA step -------------------------------------------
    let flushed = rf.write(d0, v0);
    let a1 = flushed.read(&mut tm, s1);
    let a2 = flushed.read(&mut tm, s2);
    let isa_result = tm.mk_app(alu, vec![a1, a2]);
    let flush_then_isa = flushed.write(d1, isa_result);

    // ---- commuting diagram, observed at a fresh symbolic register -------
    let obs = tm.int_var("obs");
    let lhs = impl_then_flush.read(&mut tm, obs);
    let rhs = flush_then_isa.read(&mut tm, obs);
    let same = tm.mk_eq(lhs, rhs);
    let phi = tm.mk_implies(refinement, same);

    println!(
        "commuting-diagram condition: {} DAG nodes",
        tm.dag_size(phi)
    );
    for mode in [
        EncodingMode::Sd,
        EncodingMode::Eij,
        EncodingMode::Hybrid(sufsat::DEFAULT_SEP_THOLD),
        EncodingMode::FixedHybrid,
    ] {
        let d = decide(&mut tm, phi, &DecideOptions::with_mode(mode));
        assert!(d.outcome.is_valid(), "{mode:?}: pipeline must be correct");
        println!(
            "  {mode:?}: valid (p-fun fraction {:.2}, sep predicates {}, \
             cnf clauses {})",
            d.stats.p_fun_fraction, d.stats.sep_predicates, d.stats.cnf_clauses
        );
    }

    // ---- now break the bypass and watch the counterexample --------------
    // A buggy implementation forwards v0 for s1 but forgets the s2 bypass.
    let raw2 = rf.read(&mut tm, s2);
    let buggy_result = tm.mk_app(alu, vec![op1, raw2]);
    let buggy_flush = rf_committed.write(d1, buggy_result);
    let buggy_lhs = buggy_flush.read(&mut tm, obs);
    let buggy_same = tm.mk_eq(buggy_lhs, rhs);
    let buggy = tm.mk_implies(refinement, buggy_same);
    let d = decide(&mut tm, buggy, &DecideOptions::default());
    match d.outcome {
        sufsat::Outcome::Invalid(cex) => {
            let vs2 = cex.ints[&tm.find_int_var("s2").expect("declared")];
            let vd0 = cex.ints[&tm.find_int_var("d0").expect("declared")];
            println!(
                "\nmissing bypass caught: counterexample aliases s2 = {vs2} \
                 with pending d0 = {vd0}"
            );
            assert_eq!(vs2, vd0, "the bug only shows when s2 reads the pending write");
        }
        other => panic!("the missing bypass must be caught, got {other:?}"),
    }
}
