//! Software verification scenario: translation validation.
//!
//! Proves that an "optimized" straight-line program computes the same
//! outputs as its source, treating the operations as uninterpreted — the
//! shape of the paper's Code Validation tool benchmarks. Also demonstrates
//! catching a miscompilation: swapping non-commutative operands yields a
//! counterexample.
//!
//! ```text
//! cargo run --example translation_validation
//! ```

use sufsat::{decide, DecideOptions, Outcome, TermId, TermManager};

fn main() {
    let mut tm = TermManager::new();
    // Uninterpreted machine operations.
    let add = tm.declare_fun("add", 2);
    let mul = tm.declare_fun("mul", 2);

    // Source program (three inputs a, b, c):
    //   t1 = add(a, b)
    //   t2 = mul(t1, c)
    //   t3 = add(t1, t2)     ; output
    let a_s = tm.int_var("a_src");
    let b_s = tm.int_var("b_src");
    let c_s = tm.int_var("c_src");
    let t1 = tm.mk_app(add, vec![a_s, b_s]);
    let t2 = tm.mk_app(mul, vec![t1, c_s]);
    let out_src = tm.mk_app(add, vec![t1, t2]);

    // Target program after "optimization" (common-subexpression reuse is
    // implicit through hash-consing of its own input copies):
    //   u1 = add(a, b)
    //   u2 = mul(u1, c)
    //   u3 = add(u1, u2)
    let a_t = tm.int_var("a_tgt");
    let b_t = tm.int_var("b_tgt");
    let c_t = tm.int_var("c_tgt");
    let u1 = tm.mk_app(add, vec![a_t, b_t]);
    let u2 = tm.mk_app(mul, vec![u1, c_t]);
    let out_tgt = tm.mk_app(add, vec![u1, u2]);

    let phi = validation_condition(
        &mut tm,
        &[(a_s, a_t), (b_s, b_t), (c_s, c_t)],
        out_src,
        out_tgt,
    );
    println!("validation condition ({} DAG nodes)", tm.dag_size(phi));
    let d = decide(&mut tm, phi, &DecideOptions::default());
    println!("  correct translation: {:?}", d.outcome.is_valid());
    assert!(d.outcome.is_valid());

    // A miscompilation: the target swaps the operands of the final add.
    // `add` is uninterpreted, so commutativity may NOT be assumed.
    let bad_out = tm.mk_app(add, vec![u2, u1]);
    let bad = validation_condition(
        &mut tm,
        &[(a_s, a_t), (b_s, b_t), (c_s, c_t)],
        out_src,
        bad_out,
    );
    let d = decide(&mut tm, bad, &DecideOptions::default());
    match d.outcome {
        Outcome::Invalid(cex) => {
            println!(
                "  swapped operands caught: invalid, counterexample over {} constants",
                cex.ints.len()
            );
        }
        other => panic!("miscompilation not caught: {other:?}"),
    }
}

/// `(inputs pairwise equal) => out_src = out_tgt`.
fn validation_condition(
    tm: &mut TermManager,
    inputs: &[(TermId, TermId)],
    out_src: TermId,
    out_tgt: TermId,
) -> TermId {
    let eqs: Vec<TermId> = inputs.iter().map(|&(s, t)| tm.mk_eq(s, t)).collect();
    let hyp = tm.mk_and_many(&eqs);
    let conc = tm.mk_eq(out_src, out_tgt);
    tm.mk_implies(hyp, conc)
}
