//! Incremental solving with persistent sessions: push/pop scoping and
//! unsat-core extraction over a small scheduling problem.
//!
//! One `Session` keeps its SAT solver, elimination tables and encodings
//! alive across checks; `push`/`pop` scope assertions with activation
//! literals, so retracting a bad constraint costs no re-encoding, and an
//! unsatisfiable check names the live assertions that caused it.
//!
//! ```text
//! cargo run --release --example incremental_session
//! ```

use sufsat::incremental::Session;
use sufsat::{DecideOptions, Outcome};

fn main() {
    let mut session = Session::new(DecideOptions::default());

    // Three pipeline stages with a shared clock-domain crossing: fetch
    // must finish before decode, decode before execute, and the crossing
    // `sync` sits strictly between fetch and execute.
    let (fd, de, fs, se) = {
        let tm = session.term_manager_mut();
        let fetch = tm.int_var("fetch");
        let decode = tm.int_var("decode");
        let exec = tm.int_var("exec");
        let sync = tm.int_var("sync");
        (
            tm.mk_lt(fetch, decode),
            tm.mk_lt(decode, exec),
            tm.mk_lt(fetch, sync),
            tm.mk_lt(sync, exec),
        )
    };
    let base: Vec<_> = [fd, de, fs, se]
        .into_iter()
        .map(|t| (session.assert(t), t))
        .collect();

    let r = session.check();
    match &r.outcome {
        Outcome::Invalid(model) => {
            // `Invalid` means the *negated conjunction* is falsifiable,
            // i.e. the asserted constraints are jointly satisfiable; the
            // assignment is a concrete schedule.
            let mut vals: Vec<_> = session
                .term_manager()
                .int_var_syms()
                .map(|v| {
                    let name = session.term_manager().int_var_name(v).to_string();
                    (name, model.ints.get(&v).copied().unwrap_or(0))
                })
                .collect();
            vals.sort();
            println!("base schedule is feasible:");
            for (name, value) in vals {
                println!("  {name} = {value}");
            }
        }
        other => panic!("the base constraints are satisfiable: {other:?}"),
    }

    // Scope a what-if: force the crossing before fetch. The frame makes
    // the experiment disposable.
    session.push();
    let bad = {
        let tm = session.term_manager_mut();
        let fetch = tm.int_var("fetch");
        let sync = tm.int_var("sync");
        tm.mk_lt(sync, fetch)
    };
    let bad_id = session.assert(bad);

    let r = session.check();
    assert!(matches!(r.outcome, Outcome::Valid), "expected unsat");
    let core = r.unsat_core.expect("unsat answers carry a core");
    println!("\nwhat-if `sync < fetch` is infeasible; unsat core:");
    for id in &core {
        // The core names live assertions; the clashing base constraint
        // (`fetch < sync`) must appear, the unrelated decode/execute
        // ordering need not.
        let tag = base
            .iter()
            .find(|(bid, _)| bid == id)
            .map_or("what-if", |_| "base");
        println!("  assertion #{} ({tag})", id.index());
    }
    assert!(core.contains(&bad_id), "the what-if itself must be in the core");
    assert!(core.len() < 5, "the core must drop some of the 5 live assertions");

    // Pop the frame: the experiment and everything learnt strictly from
    // it are retracted, and the base schedule is feasible again —
    // without rebuilding solver or encodings.
    session.pop();
    let r = session.check();
    assert!(
        matches!(r.outcome, Outcome::Invalid(_)),
        "pop retracts the what-if"
    );
    println!("\nafter pop the base schedule is feasible again");

    let stats = session.stats();
    println!(
        "\nsession totals: {} checks, {} re-encodes, {} reused / {} fresh encodings, {} conflicts",
        stats.checks, stats.reencodes, stats.reused_roots, stats.fresh_roots, stats.conflicts
    );
}
